//! Small, self-contained fixture models exercising each property.
//!
//! `escalation_chain` is a miniature of the paper's per-vehicle failure
//! escalation: a failure mode either recovers or escalates to a crash
//! state that ends in the `v_KO` sink. The `broken_*` variants each
//! sabotage exactly one aspect of it, so every property has a fixture
//! that trips it — and a counterexample trace to replay.

use ahs_san::{Delay, SanBuilder, SanModel};

/// Probability that a failure mode escalates rather than recovers.
const P_ESCALATE: f64 = 0.7;

fn chain(escalation_arc: bool, crash_arc: bool) -> SanModel {
    let mut b = SanBuilder::new(if escalation_arc && crash_arc {
        "escalation_chain"
    } else if crash_arc {
        "broken_escalation"
    } else {
        "broken_livelock"
    });
    let v_ok = b.place_with_tokens("v_OK", 1).unwrap();
    let fm = b.place("FM_active").unwrap();
    let cs = b.place("CS_active").unwrap();
    let v_ko = b.place("v_KO").unwrap();

    b.timed_activity("fail", Delay::exponential(1e-3))
        .unwrap()
        .input_place(v_ok)
        .output_place(fm)
        .build()
        .unwrap();

    // The escalation branch point: an instantaneous activity routing
    // the failure mode to the crash state or back to OK. The broken
    // variant drops the escalation output arc — the token vanishes,
    // leaving a non-allowlisted absorbing (empty) marking.
    let esc = b.instant_activity("escalate", 0, 1.0).unwrap();
    let esc = esc.input_place(fm).case(P_ESCALATE);
    let esc = if escalation_arc {
        esc.output_place(cs)
    } else {
        esc
    };
    esc.case(1.0 - P_ESCALATE)
        .output_place(v_ok)
        .build()
        .unwrap();

    if crash_arc {
        b.timed_activity("crash", Delay::exponential(0.1))
            .unwrap()
            .input_place(cs)
            .output_place(v_ko)
            .build()
            .unwrap();
    }
    b.timed_activity("recover", Delay::exponential(1.0))
        .unwrap()
        .input_place(cs)
        .output_place(v_ok)
        .build()
        .unwrap();
    b.build().unwrap()
}

/// The clean escalation chain: `v_OK --fail--> FM` which instantly
/// escalates to `CS` (p = 0.7) or recovers (p = 0.3); `CS` either
/// crashes into the `v_KO` sink or recovers. Checks clean on all four
/// properties with the `v_KO` allowlist.
pub fn escalation_chain() -> SanModel {
    chain(true, true)
}

/// The escalation output arc is removed: escalating drops the token,
/// stranding the model in an empty absorbing marking that no allowlist
/// covers — an **absorption** violation (and, downstream, dead
/// `crash`/`recover` activities).
pub fn broken_escalation() -> SanModel {
    chain(false, true)
}

/// The crash arc is removed: `CS` can only recover, so no state ever
/// reaches `v_KO` — every state is an **escalation-soundness**
/// violation (the chain livelocks below its sink).
pub fn broken_livelock() -> SanModel {
    chain(true, false)
}

/// A one-activity pump that grows a counter place without bound:
/// exploration truncates at any budget, and **boundedness** trips as
/// soon as the counter passes the configured capacity.
pub fn unbounded_counter() -> SanModel {
    let mut b = SanBuilder::new("unbounded_counter");
    let src = b.place_with_tokens("src", 1).unwrap();
    let counter = b.place("counter").unwrap();
    b.timed_activity("pump", Delay::exponential(1.0))
        .unwrap()
        .input_place(src)
        .output_place(src)
        .output_place(counter)
        .build()
        .unwrap();
    b.build().unwrap()
}
