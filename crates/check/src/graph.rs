//! Exhaustive exploration of a SAN's micro-step marking graph.
//!
//! The explorer walks every reachable *raw* marking — stable and
//! unstable alike — under the same micro-step semantics the linter's
//! reachability uses and the simulators execute: from a stable marking
//! the successors are the firings of the enabled timed activities; from
//! an unstable marking, the firings of the *top-priority* enabled
//! instantaneous activities; every case branch whose probability is not
//! exactly zero in the source marking is enumerated (probabilities are
//! abstracted to their support). Enabledness is read off a
//! [`EnablementCache`](ahs_san::EnablementCache) primed per expanded
//! state, so exploration shares the exact enabling semantics (gate
//! predicates, arc thresholds, priority shadowing) the simulators use —
//! in debug builds the cache additionally cross-checks itself against a
//! fresh rescan.
//!
//! The result is a [`StateGraph`]: dense markings interned in BFS
//! order through a hashed visited set (the canonical `Marking`
//! `Eq`/`Hash`), a CSR edge list labelled with `(activity, case)`, a
//! per-state stability flag, and BFS parent pointers from which a
//! *shortest* firing trace to any state can be reconstructed — the
//! minimal counterexamples the property layer emits.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};

use ahs_san::{ActivityId, Marking, SanModel, Timing};

use crate::CheckError;

/// How often the interrupt flag is polled, in expanded states.
const INTERRUPT_POLL: usize = 1024;

/// One labelled transition of the marking graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Edge {
    /// Index of the successor state.
    pub target: u32,
    /// The activity whose firing produced it.
    pub activity: ActivityId,
    /// The case branch taken.
    pub case: u16,
}

/// BFS tree pointer: how a state was first discovered.
#[derive(Debug, Clone, Copy)]
struct Parent {
    state: u32,
    activity: ActivityId,
    case: u16,
}

/// One step of a firing trace (see [`StateGraph::trace_to`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceStep {
    /// The activity fired.
    pub activity: ActivityId,
    /// Its name, for rendering.
    pub activity_name: String,
    /// The case branch taken.
    pub case: usize,
}

/// The explored marking graph of a SAN.
#[derive(Debug, Clone)]
pub struct StateGraph {
    states: Vec<Marking>,
    stable: Vec<bool>,
    /// CSR row starts: edges of state `i` are
    /// `edges[edge_start[i]..edge_start[i + 1]]`.
    edge_start: Vec<u32>,
    edges: Vec<Edge>,
    parent: Vec<Option<Parent>>,
    complete: bool,
}

impl StateGraph {
    /// Explores the reachable marking graph of `model` breadth-first,
    /// visiting at most `max_states` markings. Hitting the budget
    /// truncates the search ([`StateGraph::complete`] turns `false`)
    /// rather than failing: every state in a truncated graph is
    /// genuinely reachable, but edges to states beyond the budget are
    /// absent.
    ///
    /// # Errors
    ///
    /// Returns [`CheckError::Interrupted`] when `interrupt` is set
    /// mid-exploration (polled every [`INTERRUPT_POLL`] states).
    pub fn explore(
        model: &SanModel,
        max_states: usize,
        interrupt: Option<&AtomicBool>,
    ) -> Result<StateGraph, CheckError> {
        let max_states = max_states.clamp(1, u32::MAX as usize - 1);
        let mut index: HashMap<Marking, u32> = HashMap::new();
        let mut states: Vec<Marking> = Vec::new();
        let mut stable: Vec<bool> = Vec::new();
        let mut edge_start: Vec<u32> = Vec::new();
        let mut edges: Vec<Edge> = Vec::new();
        let mut parent: Vec<Option<Parent>> = Vec::new();
        let mut complete = true;

        let init = model.initial_marking().clone();
        index.insert(init.clone(), 0);
        states.push(init);
        parent.push(None);

        let mut cache = model.new_cache();
        let mut enabled: Vec<ActivityId> = Vec::new();
        let mut frontier = 0usize;
        while frontier < states.len() {
            if frontier.is_multiple_of(INTERRUPT_POLL) {
                if let Some(flag) = interrupt {
                    if flag.load(Ordering::Relaxed) {
                        return Err(CheckError::Interrupted {
                            states: states.len(),
                        });
                    }
                }
            }
            let m = states[frontier].clone();
            model.prime_cache(&mut cache, &m);

            // Top-priority enabled instantaneous activities; empty iff
            // the marking is stable.
            enabled.clear();
            let mut top: Option<u32> = None;
            for &a in model.instantaneous_activities() {
                if !cache.is_enabled(a) {
                    continue;
                }
                let p = match model.activity(a).timing() {
                    Timing::Instantaneous { priority, .. } => *priority,
                    Timing::Timed(_) => unreachable!("instantaneous list holds timed activity"),
                };
                match top {
                    Some(t) if p < t => {}
                    Some(t) if p == t => enabled.push(a),
                    _ => {
                        top = Some(p);
                        enabled.clear();
                        enabled.push(a);
                    }
                }
            }
            let is_stable = top.is_none();
            if is_stable {
                enabled.extend(
                    model
                        .timed_activities()
                        .iter()
                        .copied()
                        .filter(|&a| cache.is_enabled(a)),
                );
                debug_assert_eq!(enabled, model.enabled_timed(&m));
            } else {
                debug_assert_eq!(enabled, model.enabled_instantaneous(&m));
            }
            stable.push(is_stable);
            edge_start.push(edges.len() as u32);

            for &a in &enabled {
                let cases = model.activity(a).cases();
                for (case, branch) in cases.iter().enumerate() {
                    // A case with probability exactly 0 in this marking
                    // cannot be taken; exploring it would fabricate
                    // unreachable states. Degenerate probabilities
                    // (negative, NaN) are still explored — the linter
                    // reports them, and hiding their successors would
                    // mask further defects behind them.
                    if branch.probability(&m) == 0.0 {
                        continue;
                    }
                    let mut next = m.clone();
                    model.fire(a, case, &mut next);
                    let j = match index.get(&next) {
                        Some(&j) => j,
                        None if states.len() < max_states => {
                            let j = states.len() as u32;
                            index.insert(next.clone(), j);
                            states.push(next);
                            parent.push(Some(Parent {
                                state: frontier as u32,
                                activity: a,
                                case: case as u16,
                            }));
                            j
                        }
                        None => {
                            complete = false;
                            continue;
                        }
                    };
                    edges.push(Edge {
                        target: j,
                        activity: a,
                        case: case as u16,
                    });
                }
            }
            frontier += 1;
        }
        edge_start.push(edges.len() as u32);

        Ok(StateGraph {
            states,
            stable,
            edge_start,
            edges,
            parent,
            complete,
        })
    }

    /// Number of explored states.
    pub fn len(&self) -> usize {
        self.states.len()
    }

    /// Whether the graph holds no states (never after exploration).
    pub fn is_empty(&self) -> bool {
        self.states.is_empty()
    }

    /// Whether the whole reachable set was visited.
    pub fn complete(&self) -> bool {
        self.complete
    }

    /// Total number of recorded transitions.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// The marking of state `i`.
    pub fn marking(&self, i: usize) -> &Marking {
        &self.states[i]
    }

    /// All explored markings, in BFS order (initial marking first).
    pub fn markings(&self) -> &[Marking] {
        &self.states
    }

    /// Whether state `i` is stable (no instantaneous activity enabled).
    pub fn is_stable(&self, i: usize) -> bool {
        self.stable[i]
    }

    /// Number of stable states.
    pub fn stable_count(&self) -> usize {
        self.stable.iter().filter(|&&s| s).count()
    }

    /// Outgoing edges of state `i`, in enumeration order.
    pub fn successors(&self, i: usize) -> &[Edge] {
        &self.edges[self.edge_start[i] as usize..self.edge_start[i + 1] as usize]
    }

    /// Whether state `i` is terminal (no outgoing edges). Only
    /// meaningful as "absorbing" when the graph is complete.
    pub fn is_terminal(&self, i: usize) -> bool {
        self.successors(i).is_empty()
    }

    /// Indices of all terminal states.
    pub fn terminals(&self) -> impl Iterator<Item = usize> + '_ {
        (0..self.len()).filter(|&i| self.is_terminal(i))
    }

    /// The shortest firing trace from the initial marking to state `i`,
    /// read off the BFS tree. Empty for the initial state itself.
    pub fn trace_to(&self, model: &SanModel, i: usize) -> Vec<TraceStep> {
        let mut rev = Vec::new();
        let mut cur = i as u32;
        while let Some(p) = self.parent[cur as usize] {
            rev.push(TraceStep {
                activity: p.activity,
                activity_name: model.activity(p.activity).name().to_owned(),
                case: p.case as usize,
            });
            cur = p.state;
        }
        rev.reverse();
        rev
    }

    /// Order-independent digest of the explored state set: XOR of the
    /// canonical fingerprints of all markings. Stable across runs and
    /// exploration orders, so two explorations of the same model agree
    /// bit for bit.
    pub fn state_set_digest(&self) -> u64 {
        self.states.iter().fold(0, |acc, m| acc ^ m.fingerprint())
    }
}
