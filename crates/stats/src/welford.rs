//! Running first and second moments (Welford's algorithm).

use crate::ci::{student_t_quantile, ConfidenceInterval};

/// Numerically stable running mean and variance of a stream of samples.
///
/// Uses Welford's online algorithm so that very long replication runs do
/// not lose precision to catastrophic cancellation. Two accumulators can
/// be [merged](RunningStats::merge), which is what the parallel
/// replication runner uses to combine per-worker results.
///
/// # Example
///
/// ```
/// use ahs_stats::RunningStats;
///
/// let mut s = RunningStats::new();
/// s.extend([1.0, 2.0, 3.0, 4.0]);
/// assert_eq!(s.count(), 4);
/// assert!((s.mean() - 2.5).abs() < 1e-12);
/// assert!((s.sample_variance() - 5.0 / 3.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RunningStats {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

/// Same as [`RunningStats::new`]; a derived `Default` would zero-fill
/// `min`/`max` instead of the ±∞ an empty accumulator requires, which
/// silently corrupts `min()` after the first push.
impl Default for RunningStats {
    fn default() -> Self {
        RunningStats::new()
    }
}

impl RunningStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        RunningStats {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one sample.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        let delta2 = x - self.mean;
        self.m2 += delta * delta2;
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Adds every sample from an iterator.
    pub fn extend<I: IntoIterator<Item = f64>>(&mut self, iter: I) {
        for x in iter {
            self.push(x);
        }
    }

    /// Number of samples observed so far.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sample mean; `0.0` when empty.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Unbiased sample variance (`n - 1` denominator); `0.0` for fewer
    /// than two samples.
    pub fn sample_variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Population variance (`n` denominator); `0.0` when empty.
    pub fn population_variance(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.sample_variance().sqrt()
    }

    /// Standard error of the mean.
    pub fn std_error(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            (self.sample_variance() / self.count as f64).sqrt()
        }
    }

    /// Smallest observed sample; `+inf` when empty.
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observed sample; `-inf` when empty.
    pub fn max(&self) -> f64 {
        self.max
    }

    /// The raw second central moment `M2 = Σ(x - mean)²` (for
    /// checkpoint serialization; pair with
    /// [`from_parts`](RunningStats::from_parts)).
    pub fn m2(&self) -> f64 {
        self.m2
    }

    /// Rebuilds an accumulator from its raw state, the inverse of the
    /// `count`/`mean`/`m2`/`min`/`max` accessors. Used by
    /// checkpoint/resume to restore an estimator bit-for-bit.
    ///
    /// # Panics
    ///
    /// Panics if `m2` is negative (NaN is accepted nowhere on the
    /// write side, so a negative `m2` always means a corrupt source).
    pub fn from_parts(count: u64, mean: f64, m2: f64, min: f64, max: f64) -> Self {
        assert!(
            m2 >= 0.0 || m2.is_nan(),
            "m2 must be non-negative, got {m2}"
        );
        RunningStats {
            count,
            mean,
            m2,
            min,
            max,
        }
    }

    /// Two-sided Student-t confidence interval on the mean at the given
    /// confidence level (e.g. `0.95`).
    ///
    /// With fewer than two samples the interval is degenerate (half-width
    /// zero for an empty accumulator, infinite for a single sample).
    pub fn confidence_interval(&self, confidence: f64) -> ConfidenceInterval {
        if self.count == 0 {
            return ConfidenceInterval::degenerate(0.0);
        }
        if self.count == 1 {
            return ConfidenceInterval::new(self.mean, f64::INFINITY, confidence);
        }
        let t = student_t_quantile(confidence, self.count - 1);
        ConfidenceInterval::new(self.mean, t * self.std_error(), confidence)
    }

    /// Combines two accumulators as if every sample had been pushed into
    /// one (Chan et al. parallel variance update).
    pub fn merge(&mut self, other: &RunningStats) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// Running moments of weighted samples, used by importance-sampling
/// estimators where each replication carries a likelihood ratio.
///
/// The estimator treats each `(value, weight)` pair as the i.i.d.
/// observation `value * weight`, which is the unbiased importance-sampling
/// estimator of the original expectation. The accumulator additionally
/// tracks the weight distribution so that degenerate biasing schemes (a
/// handful of enormous weights) can be diagnosed via
/// [`effective_sample_size`](WeightedStats::effective_sample_size).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct WeightedStats {
    product: RunningStats,
    weight_sum: f64,
    weight_sq_sum: f64,
}

impl WeightedStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        WeightedStats::default()
    }

    /// Adds one weighted sample.
    pub fn push(&mut self, value: f64, weight: f64) {
        self.product.push(value * weight);
        self.weight_sum += weight;
        self.weight_sq_sum += weight * weight;
    }

    /// Number of samples observed.
    pub fn count(&self) -> u64 {
        self.product.count()
    }

    /// Unbiased estimate of the target expectation.
    pub fn mean(&self) -> f64 {
        self.product.mean()
    }

    /// Sample variance of the weighted observations.
    pub fn sample_variance(&self) -> f64 {
        self.product.sample_variance()
    }

    /// Standard error of the estimate.
    pub fn std_error(&self) -> f64 {
        self.product.std_error()
    }

    /// Confidence interval on the target expectation.
    pub fn confidence_interval(&self, confidence: f64) -> ConfidenceInterval {
        self.product.confidence_interval(confidence)
    }

    /// Kish effective sample size `(Σw)² / Σw²`; small values relative to
    /// [`count`](WeightedStats::count) indicate weight degeneracy.
    pub fn effective_sample_size(&self) -> f64 {
        if self.weight_sq_sum == 0.0 {
            0.0
        } else {
            self.weight_sum * self.weight_sum / self.weight_sq_sum
        }
    }

    /// Mean of the weights; should be close to `1.0` for an unbiased
    /// change of measure applied to the whole sample path.
    pub fn mean_weight(&self) -> f64 {
        if self.count() == 0 {
            0.0
        } else {
            self.weight_sum / self.count() as f64
        }
    }

    /// The underlying statistics of the weighted observations
    /// `value * weight`, e.g. for feeding a
    /// [`StoppingRule`](crate::StoppingRule).
    pub fn product_stats(&self) -> &RunningStats {
        &self.product
    }

    /// Sum of observed weights (for checkpoint serialization).
    pub fn weight_sum(&self) -> f64 {
        self.weight_sum
    }

    /// Sum of squared observed weights (for checkpoint serialization).
    pub fn weight_sq_sum(&self) -> f64 {
        self.weight_sq_sum
    }

    /// Rebuilds an accumulator from its raw state (the inverse of
    /// [`product_stats`](WeightedStats::product_stats) /
    /// [`weight_sum`](WeightedStats::weight_sum) /
    /// [`weight_sq_sum`](WeightedStats::weight_sq_sum)), used by
    /// checkpoint/resume.
    pub fn from_parts(product: RunningStats, weight_sum: f64, weight_sq_sum: f64) -> Self {
        WeightedStats {
            product,
            weight_sum,
            weight_sq_sum,
        }
    }

    /// Combines two accumulators.
    pub fn merge(&mut self, other: &WeightedStats) {
        self.product.merge(&other.product);
        self.weight_sum += other.weight_sum;
        self.weight_sq_sum += other.weight_sq_sum;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_stats_are_zero() {
        let s = RunningStats::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.sample_variance(), 0.0);
        assert_eq!(s.std_error(), 0.0);
    }

    #[test]
    fn single_sample() {
        let mut s = RunningStats::new();
        s.push(7.5);
        assert_eq!(s.count(), 1);
        assert_eq!(s.mean(), 7.5);
        assert_eq!(s.sample_variance(), 0.0);
        assert_eq!(s.min(), 7.5);
        assert_eq!(s.max(), 7.5);
    }

    #[test]
    fn mean_and_variance_match_direct_formulas() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let mut s = RunningStats::new();
        s.extend(xs);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.population_variance() - 4.0).abs() < 1e-12);
        assert!((s.sample_variance() - 32.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn merge_equals_sequential() {
        let xs: Vec<f64> = (0..50).map(|i| (i as f64).sin() * 10.0).collect();
        let mut all = RunningStats::new();
        all.extend(xs.iter().copied());

        let mut a = RunningStats::new();
        let mut b = RunningStats::new();
        a.extend(xs[..20].iter().copied());
        b.extend(xs[20..].iter().copied());
        a.merge(&b);

        assert_eq!(a.count(), all.count());
        assert!((a.mean() - all.mean()).abs() < 1e-10);
        assert!((a.sample_variance() - all.sample_variance()).abs() < 1e-10);
        assert_eq!(a.min(), all.min());
        assert_eq!(a.max(), all.max());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut s = RunningStats::new();
        s.extend([1.0, 2.0, 3.0]);
        let before = s;
        s.merge(&RunningStats::new());
        assert_eq!(s, before);

        let mut e = RunningStats::new();
        e.merge(&before);
        assert_eq!(e, before);
    }

    #[test]
    fn confidence_interval_covers_mean() {
        let mut s = RunningStats::new();
        s.extend((0..1000).map(|i| f64::from(i % 100)));
        let ci = s.confidence_interval(0.95);
        assert!(ci.contains(s.mean()));
        assert!(ci.half_width() > 0.0);
        assert!(ci.half_width() < 5.0);
    }

    #[test]
    fn weighted_unit_weights_match_plain() {
        let xs = [0.0, 1.0, 1.0, 0.0, 1.0];
        let mut w = WeightedStats::new();
        let mut p = RunningStats::new();
        for &x in &xs {
            w.push(x, 1.0);
            p.push(x);
        }
        assert_eq!(w.mean(), p.mean());
        assert_eq!(w.sample_variance(), p.sample_variance());
        assert!((w.effective_sample_size() - 5.0).abs() < 1e-12);
        assert!((w.mean_weight() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn weighted_recovers_rare_probability() {
        // Estimate P(X = 1) = 0.01 by sampling a biased Bernoulli(0.5)
        // and weighting: weight = p/q on hits, (1-p)/(1-q) on misses.
        let (p, q) = (0.01, 0.5);
        let mut w = WeightedStats::new();
        for i in 0..10_000 {
            let hit = i % 2 == 0; // deterministic "half hits" stand-in
            if hit {
                w.push(1.0, p / q);
            } else {
                w.push(0.0, (1.0 - p) / (1.0 - q));
            }
        }
        assert!((w.mean() - p / 2.0 / q).abs() < 1e-12); // 0.5 of samples hit
        assert!(w.effective_sample_size() > 1000.0);
    }

    #[test]
    fn from_parts_round_trips_exactly() {
        let mut w = WeightedStats::new();
        for i in 0..25 {
            w.push((i % 4) as f64, 1.0 + (i % 3) as f64 * 0.25);
        }
        let p = *w.product_stats();
        let rebuilt = WeightedStats::from_parts(
            RunningStats::from_parts(p.count(), p.mean(), p.m2(), p.min(), p.max()),
            w.weight_sum(),
            w.weight_sq_sum(),
        );
        // Bitwise equality, not approximate: resume depends on it.
        assert_eq!(rebuilt, w);
        // And the rebuilt accumulator keeps evolving identically.
        let mut a = w;
        let mut b = rebuilt;
        a.push(1.0, 0.5);
        b.push(1.0, 0.5);
        assert_eq!(a, b);
    }

    #[test]
    fn weighted_merge_equals_sequential() {
        let mut a = WeightedStats::new();
        let mut b = WeightedStats::new();
        let mut all = WeightedStats::new();
        for i in 0..40 {
            let (v, w) = ((i % 3) as f64, 1.0 + (i % 5) as f64 / 10.0);
            all.push(v, w);
            if i < 17 {
                a.push(v, w);
            } else {
                b.push(v, w);
            }
        }
        a.merge(&b);
        assert!((a.mean() - all.mean()).abs() < 1e-12);
        assert!((a.effective_sample_size() - all.effective_sample_size()).abs() < 1e-9);
    }
}
