//! Statistical machinery for stochastic simulation studies.
//!
//! This crate provides the estimator layer used by the AHS safety study
//! (Hamouda et al., DSN 2009): running moments, confidence intervals,
//! relative-precision stopping rules (the paper stops each point after at
//! least 10 000 batches once the 95% interval is within 0.1 relative
//! half-width), batch means, histograms, and time-grid curve accumulators
//! for transient measures such as the unsafety `S(t)`.
//!
//! # Example
//!
//! ```
//! use ahs_stats::{RunningStats, StoppingRule};
//!
//! let mut stats = RunningStats::new();
//! for i in 0..1000 {
//!     stats.push(f64::from(i % 10));
//! }
//! let ci = stats.confidence_interval(0.95);
//! assert!(ci.contains(4.5));
//!
//! let rule = StoppingRule::relative_precision(0.95, 0.1).with_min_samples(50);
//! assert!(rule.is_satisfied(&stats));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod batch;
mod ci;
mod curve;
mod histogram;
mod stopping;
mod summary;
mod welford;

pub use batch::BatchMeans;
pub use ci::{normal_quantile, student_t_quantile, ConfidenceInterval};
pub use curve::{Curve, CurvePoint, TimeGrid};
pub use histogram::Histogram;
pub use stopping::StoppingRule;
pub use summary::{format_csv, format_markdown, RowWidthError, Table};
pub use welford::{RunningStats, WeightedStats};
