//! Time-grid accumulation of transient measures such as `S(t)`.

use serde::{Deserialize, Serialize};

use crate::ci::ConfidenceInterval;
use crate::welford::WeightedStats;

/// A grid of observation instants for a transient measure.
///
/// The AHS study evaluates the unsafety `S(t)` at trip durations between
/// 2 and 10 hours; a `TimeGrid` holds those instants and a
/// [`Curve`] accumulates per-instant estimates over replications.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TimeGrid {
    points: Vec<f64>,
}

impl TimeGrid {
    /// Creates a grid from explicit instants.
    ///
    /// # Panics
    ///
    /// Panics if `points` is empty, unsorted, or contains a negative or
    /// non-finite instant.
    pub fn new(points: Vec<f64>) -> Self {
        assert!(!points.is_empty(), "time grid must not be empty");
        for w in points.windows(2) {
            assert!(w[0] < w[1], "time grid must be strictly increasing");
        }
        assert!(
            points.iter().all(|t| t.is_finite() && *t >= 0.0),
            "time grid instants must be finite and non-negative"
        );
        TimeGrid { points }
    }

    /// `count` evenly spaced instants from `start` to `end` inclusive.
    ///
    /// # Panics
    ///
    /// Panics if `count < 2` or `start >= end`.
    pub fn linspace(start: f64, end: f64, count: usize) -> Self {
        assert!(count >= 2, "linspace needs at least two points");
        assert!(start < end, "start must precede end");
        let step = (end - start) / (count - 1) as f64;
        TimeGrid::new((0..count).map(|i| start + step * i as f64).collect())
    }

    /// The grid instants, strictly increasing.
    pub fn points(&self) -> &[f64] {
        &self.points
    }

    /// Number of instants.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the grid is empty (never true for a constructed grid).
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Largest instant — the simulation horizon needed to cover the grid.
    pub fn horizon(&self) -> f64 {
        *self.points.last().expect("grid is never empty")
    }
}

/// One estimated point of a curve.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CurvePoint {
    /// Abscissa (time, platoon size, …).
    pub x: f64,
    /// Point estimate.
    pub y: f64,
    /// Confidence-interval half-width on `y`.
    pub half_width: f64,
    /// Number of replications behind the estimate.
    pub samples: u64,
}

/// Accumulates a transient probability curve over replications.
///
/// Each replication reports the first time the event of interest occurred
/// (`Some(t)`) or that it never occurred within the horizon (`None`),
/// together with a likelihood-ratio weight (`1.0` for plain Monte Carlo).
/// `P(event by grid point g)` is then the weighted mean of the indicator
/// `t <= g`.
///
/// # Example
///
/// ```
/// use ahs_stats::{Curve, TimeGrid};
///
/// let grid = TimeGrid::new(vec![1.0, 2.0, 3.0]);
/// let mut curve = Curve::new(grid);
/// curve.record_first_passage(Some(1.5), 1.0);
/// curve.record_first_passage(None, 1.0);
/// let pts = curve.points(0.95);
/// assert_eq!(pts[0].y, 0.0); // nothing by t=1
/// assert_eq!(pts[1].y, 0.5); // one of two paths hit by t=2
/// ```
#[derive(Debug, Clone)]
pub struct Curve {
    grid: TimeGrid,
    estimators: Vec<WeightedStats>,
}

impl Curve {
    /// Creates an empty curve over `grid`.
    pub fn new(grid: TimeGrid) -> Self {
        let estimators = vec![WeightedStats::new(); grid.len()];
        Curve { grid, estimators }
    }

    /// The underlying grid.
    pub fn grid(&self) -> &TimeGrid {
        &self.grid
    }

    /// Records one replication outcome: the first-passage time of the
    /// event (or `None` if it did not occur before the horizon) and the
    /// replication's likelihood-ratio weight.
    ///
    /// # Panics
    ///
    /// Panics if `weight` is negative or non-finite.
    pub fn record_first_passage(&mut self, hit_time: Option<f64>, weight: f64) {
        assert!(
            weight.is_finite() && weight >= 0.0,
            "weight must be finite and non-negative, got {weight}"
        );
        for (g, est) in self.grid.points.iter().zip(self.estimators.iter_mut()) {
            let hit = matches!(hit_time, Some(t) if t <= *g);
            // For an indicator under importance sampling the correct
            // per-point weight is the path weight on hits; on misses the
            // weighted indicator is zero regardless, but the weight still
            // enters the estimator as a zero-valued observation with that
            // weight so that mean-weight diagnostics stay meaningful.
            est.push(if hit { 1.0 } else { 0.0 }, weight);
        }
    }

    /// Records one replication of a general transient measure: one
    /// `(value, weight)` observation per grid point (e.g. the indicator
    /// of a non-absorbing condition with its point-specific likelihood
    /// ratio under importance sampling).
    ///
    /// # Panics
    ///
    /// Panics if `observations` does not match the grid length or a
    /// weight is negative or non-finite.
    pub fn record_weighted(&mut self, observations: &[(f64, f64)]) {
        assert_eq!(
            observations.len(),
            self.grid.len(),
            "expected one observation per grid point"
        );
        for ((v, w), est) in observations.iter().zip(self.estimators.iter_mut()) {
            assert!(
                w.is_finite() && *w >= 0.0,
                "weight must be finite and non-negative, got {w}"
            );
            est.push(*v, *w);
        }
    }

    /// Number of replications recorded.
    pub fn samples(&self) -> u64 {
        self.estimators.first().map_or(0, |e| e.count())
    }

    /// Point estimates with confidence intervals at `confidence`.
    pub fn points(&self, confidence: f64) -> Vec<CurvePoint> {
        self.grid
            .points
            .iter()
            .zip(self.estimators.iter())
            .map(|(x, est)| CurvePoint {
                x: *x,
                y: est.mean(),
                half_width: est.confidence_interval(confidence).half_width(),
                samples: est.count(),
            })
            .collect()
    }

    /// The estimator for grid index `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub fn estimator(&self, i: usize) -> &WeightedStats {
        &self.estimators[i]
    }

    /// All per-point estimators in grid order (for checkpoint
    /// serialization; pair with [`from_parts`](Curve::from_parts)).
    pub fn estimators(&self) -> &[WeightedStats] {
        &self.estimators
    }

    /// Rebuilds a curve from a grid and its per-point estimators, used
    /// by checkpoint/resume to restore accumulated state bit-for-bit.
    ///
    /// # Panics
    ///
    /// Panics if `estimators` does not match the grid length.
    pub fn from_parts(grid: TimeGrid, estimators: Vec<WeightedStats>) -> Self {
        assert_eq!(
            estimators.len(),
            grid.len(),
            "expected one estimator per grid point"
        );
        Curve { grid, estimators }
    }

    /// Confidence interval at grid index `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub fn interval(&self, i: usize, confidence: f64) -> ConfidenceInterval {
        self.estimators[i].confidence_interval(confidence)
    }

    /// Merges another curve accumulated over the same grid, as used when
    /// joining per-worker results.
    ///
    /// # Panics
    ///
    /// Panics if the grids differ.
    pub fn merge(&mut self, other: &Curve) {
        assert_eq!(
            self.grid, other.grid,
            "cannot merge curves over different grids"
        );
        for (a, b) in self.estimators.iter_mut().zip(other.estimators.iter()) {
            a.merge(b);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linspace_endpoints_and_spacing() {
        let g = TimeGrid::linspace(2.0, 10.0, 5);
        assert_eq!(g.points(), &[2.0, 4.0, 6.0, 8.0, 10.0]);
        assert_eq!(g.horizon(), 10.0);
        assert_eq!(g.len(), 5);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn grid_rejects_unsorted() {
        TimeGrid::new(vec![1.0, 1.0]);
    }

    #[test]
    fn curve_is_monotone_in_time() {
        let mut c = Curve::new(TimeGrid::linspace(1.0, 5.0, 5));
        let hits = [Some(0.5), Some(2.5), Some(4.9), None, None, Some(1.0)];
        for h in hits {
            c.record_first_passage(h, 1.0);
        }
        let pts = c.points(0.95);
        for w in pts.windows(2) {
            assert!(w[0].y <= w[1].y, "curve must be non-decreasing");
        }
        assert!((pts[0].y - 2.0 / 6.0).abs() < 1e-12); // 0.5 and 1.0 hit by t=1
        assert!((pts[4].y - 4.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn merge_matches_sequential() {
        let grid = TimeGrid::linspace(1.0, 3.0, 3);
        let mut all = Curve::new(grid.clone());
        let mut a = Curve::new(grid.clone());
        let mut b = Curve::new(grid);
        let outcomes = [Some(0.5), None, Some(2.2), Some(2.9), None, Some(1.5)];
        for (i, h) in outcomes.iter().enumerate() {
            all.record_first_passage(*h, 1.0);
            if i < 3 {
                a.record_first_passage(*h, 1.0);
            } else {
                b.record_first_passage(*h, 1.0);
            }
        }
        a.merge(&b);
        let pa = a.points(0.95);
        let pall = all.points(0.95);
        for (x, y) in pa.iter().zip(pall.iter()) {
            assert!((x.y - y.y).abs() < 1e-12);
            assert_eq!(x.samples, y.samples);
        }
    }

    #[test]
    fn weighted_hits_scale_estimate() {
        let mut c = Curve::new(TimeGrid::new(vec![1.0]));
        c.record_first_passage(Some(0.5), 0.01);
        c.record_first_passage(None, 1.0);
        let pts = c.points(0.95);
        assert!((pts[0].y - 0.005).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "weight must be finite and non-negative")]
    fn rejects_negative_weight() {
        let mut c = Curve::new(TimeGrid::new(vec![1.0]));
        c.record_first_passage(None, -1.0);
    }

    #[test]
    fn record_weighted_accumulates_per_point() {
        let mut c = Curve::new(TimeGrid::new(vec![1.0, 2.0]));
        c.record_weighted(&[(1.0, 0.5), (0.0, 1.0)]);
        c.record_weighted(&[(1.0, 1.5), (1.0, 1.0)]);
        let pts = c.points(0.95);
        assert!((pts[0].y - 1.0).abs() < 1e-12); // (0.5 + 1.5) / 2
        assert!((pts[1].y - 0.5).abs() < 1e-12); // (0 + 1) / 2
        assert_eq!(c.samples(), 2);
    }

    #[test]
    #[should_panic(expected = "one observation per grid point")]
    fn record_weighted_checks_length() {
        let mut c = Curve::new(TimeGrid::new(vec![1.0, 2.0]));
        c.record_weighted(&[(1.0, 1.0)]);
    }
}
