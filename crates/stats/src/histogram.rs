//! Fixed-bin histograms for duration and count distributions.

/// A fixed-width-bin histogram over a closed range, with underflow and
/// overflow buckets.
///
/// Used for diagnostics such as maneuver-duration distributions from the
/// kinematic substrate and first-passage-time spreads.
///
/// # Example
///
/// ```
/// use ahs_stats::Histogram;
///
/// let mut h = Histogram::new(0.0, 10.0, 10);
/// for x in [0.5, 1.5, 1.7, 9.9, 12.0] {
///     h.record(x);
/// }
/// assert_eq!(h.count(), 5);
/// assert_eq!(h.bin_count(1), 2);
/// assert_eq!(h.overflow(), 1);
/// assert!((h.quantile(0.5) - 1.5).abs() < 1.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    low: f64,
    high: f64,
    bins: Vec<u64>,
    underflow: u64,
    overflow: u64,
    count: u64,
    sum: f64,
}

impl Histogram {
    /// Creates a histogram with `bins` equal-width bins over `[low, high)`.
    ///
    /// # Panics
    ///
    /// Panics if `low >= high`, either bound is non-finite, or
    /// `bins == 0`.
    pub fn new(low: f64, high: f64, bins: usize) -> Self {
        assert!(low.is_finite() && high.is_finite(), "bounds must be finite");
        assert!(low < high, "low must be below high");
        assert!(bins > 0, "need at least one bin");
        Histogram {
            low,
            high,
            bins: vec![0; bins],
            underflow: 0,
            overflow: 0,
            count: 0,
            sum: 0.0,
        }
    }

    /// Records one observation.
    pub fn record(&mut self, x: f64) {
        self.count += 1;
        self.sum += x;
        if x < self.low {
            self.underflow += 1;
        } else if x >= self.high {
            self.overflow += 1;
        } else {
            let w = (self.high - self.low) / self.bins.len() as f64;
            let idx = ((x - self.low) / w) as usize;
            let idx = idx.min(self.bins.len() - 1);
            self.bins[idx] += 1;
        }
    }

    /// Total observations including under/overflow.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean of all recorded observations.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Observations in bin `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub fn bin_count(&self, i: usize) -> u64 {
        self.bins[i]
    }

    /// Number of bins.
    pub fn num_bins(&self) -> usize {
        self.bins.len()
    }

    /// Observations below the range.
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Observations at or above the upper bound.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Lower edge of bin `i`.
    pub fn bin_low(&self, i: usize) -> f64 {
        self.low + (self.high - self.low) * i as f64 / self.bins.len() as f64
    }

    /// Approximate quantile by linear interpolation within the bin that
    /// crosses the target cumulative count. Under/overflow observations
    /// clamp to the range bounds.
    ///
    /// # Panics
    ///
    /// Panics if `q` is not in `[0, 1]` or the histogram is empty.
    pub fn quantile(&self, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q), "quantile must be in [0, 1]");
        assert!(self.count > 0, "quantile of an empty histogram");
        let target = q * self.count as f64;
        let mut cum = self.underflow as f64;
        if cum >= target {
            return self.low;
        }
        let w = (self.high - self.low) / self.bins.len() as f64;
        for (i, &c) in self.bins.iter().enumerate() {
            let next = cum + c as f64;
            if next >= target && c > 0 {
                let frac = (target - cum) / c as f64;
                return self.bin_low(i) + frac * w;
            }
            cum = next;
        }
        self.high
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bins_fill_correctly() {
        let mut h = Histogram::new(0.0, 4.0, 4);
        for x in [0.0, 0.9, 1.0, 2.5, 3.999] {
            h.record(x);
        }
        assert_eq!(h.bin_count(0), 2);
        assert_eq!(h.bin_count(1), 1);
        assert_eq!(h.bin_count(2), 1);
        assert_eq!(h.bin_count(3), 1);
        assert_eq!(h.underflow(), 0);
        assert_eq!(h.overflow(), 0);
    }

    #[test]
    fn under_and_overflow_tracked() {
        let mut h = Histogram::new(0.0, 1.0, 2);
        h.record(-0.1);
        h.record(1.0);
        h.record(5.0);
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 2);
        assert_eq!(h.count(), 3);
    }

    #[test]
    fn quantile_median_of_uniform_fill() {
        let mut h = Histogram::new(0.0, 100.0, 100);
        for i in 0..100 {
            h.record(i as f64 + 0.5);
        }
        let med = h.quantile(0.5);
        assert!((med - 50.0).abs() < 2.0, "median {med} too far from 50");
        assert!(h.quantile(0.0) <= h.quantile(1.0));
    }

    #[test]
    fn mean_matches_inputs() {
        let mut h = Histogram::new(0.0, 10.0, 5);
        h.record(2.0);
        h.record(4.0);
        assert!((h.mean() - 3.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "low must be below high")]
    fn rejects_inverted_range() {
        Histogram::new(1.0, 1.0, 4);
    }
}
