//! Stopping rules for sequential simulation experiments.

use crate::welford::RunningStats;

/// When to stop collecting replications.
///
/// The paper's criterion is "at least 10 000 simulation batches,
/// converging within 95% probability in a 0.1 relative interval"; that is
/// expressed here as
/// `StoppingRule::relative_precision(0.95, 0.1).with_min_samples(10_000)`.
///
/// # Example
///
/// ```
/// use ahs_stats::{RunningStats, StoppingRule};
///
/// let rule = StoppingRule::relative_precision(0.95, 0.1)
///     .with_min_samples(100)
///     .with_max_samples(1_000_000);
/// let mut stats = RunningStats::new();
/// stats.extend(std::iter::repeat(3.0).take(100));
/// assert!(rule.is_satisfied(&stats)); // zero variance converges instantly
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StoppingRule {
    confidence: f64,
    relative_half_width: Option<f64>,
    min_samples: u64,
    max_samples: Option<u64>,
}

impl StoppingRule {
    /// Stop once the `confidence`-level interval half-width falls below
    /// `relative` times the estimated mean.
    ///
    /// # Panics
    ///
    /// Panics if `confidence` is not in `(0, 1)` or `relative <= 0`.
    pub fn relative_precision(confidence: f64, relative: f64) -> Self {
        assert!(
            confidence > 0.0 && confidence < 1.0,
            "confidence level must lie strictly between 0 and 1, got {confidence}"
        );
        assert!(relative > 0.0, "relative precision must be positive");
        StoppingRule {
            confidence,
            relative_half_width: Some(relative),
            min_samples: 2,
            max_samples: None,
        }
    }

    /// Stop after exactly `n` samples, regardless of precision.
    pub fn fixed(n: u64) -> Self {
        StoppingRule {
            confidence: 0.95,
            relative_half_width: None,
            min_samples: n,
            max_samples: Some(n),
        }
    }

    /// Requires at least `n` samples before the precision criterion may
    /// trigger.
    pub fn with_min_samples(mut self, n: u64) -> Self {
        self.min_samples = n.max(2);
        self
    }

    /// Caps the number of samples; the rule is satisfied at the cap even
    /// if the precision target was not reached (callers can detect this
    /// through [`StoppingRule::precision_reached`]).
    pub fn with_max_samples(mut self, n: u64) -> Self {
        self.max_samples = Some(n);
        self
    }

    /// Confidence level of the precision criterion.
    pub fn confidence(&self) -> f64 {
        self.confidence
    }

    /// Target relative half-width, if this is a precision rule.
    pub fn relative_half_width(&self) -> Option<f64> {
        self.relative_half_width
    }

    /// Minimum number of samples demanded.
    pub fn min_samples(&self) -> u64 {
        self.min_samples
    }

    /// Maximum number of samples allowed, if capped.
    pub fn max_samples(&self) -> Option<u64> {
        self.max_samples
    }

    /// Whether the precision target (ignoring the cap) is met.
    ///
    /// A zero or non-finite estimated mean never satisfies the target:
    /// the relative half-width divides by the mean, and a rare event
    /// with zero observed hits says nothing about precision — such a
    /// run must report "not converged" (and stop only at the
    /// `max_samples` cap) rather than stop instantly or propagate NaN.
    pub fn precision_reached(&self, stats: &RunningStats) -> bool {
        match self.relative_half_width {
            None => true,
            Some(target) => {
                if stats.count() < 2 {
                    return false;
                }
                let mean = stats.mean();
                if mean == 0.0 || !mean.is_finite() {
                    return false;
                }
                let ci = stats.confidence_interval(self.confidence);
                ci.half_width() == 0.0 || ci.relative_half_width() <= target
            }
        }
    }

    /// Whether sampling may stop given the current statistics.
    pub fn is_satisfied(&self, stats: &RunningStats) -> bool {
        if stats.count() < self.min_samples {
            return false;
        }
        if let Some(max) = self.max_samples {
            if stats.count() >= max {
                return true;
            }
        }
        self.precision_reached(stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_rule_stops_exactly_at_n() {
        let rule = StoppingRule::fixed(5);
        let mut s = RunningStats::new();
        for i in 0..4 {
            s.push(i as f64);
            assert!(!rule.is_satisfied(&s), "stopped early at {}", i + 1);
        }
        s.push(4.0);
        assert!(rule.is_satisfied(&s));
    }

    #[test]
    fn min_samples_blocks_early_stop() {
        let rule = StoppingRule::relative_precision(0.95, 0.5).with_min_samples(10);
        let mut s = RunningStats::new();
        s.extend(std::iter::repeat_n(1.0, 9));
        assert!(!rule.is_satisfied(&s));
        s.push(1.0);
        assert!(rule.is_satisfied(&s));
    }

    #[test]
    fn max_samples_forces_stop() {
        // Alternating 0/1 data has large relative error early on.
        let rule = StoppingRule::relative_precision(0.95, 1e-6).with_max_samples(20);
        let mut s = RunningStats::new();
        for i in 0..20 {
            s.push((i % 2) as f64);
        }
        assert!(rule.is_satisfied(&s));
        assert!(!rule.precision_reached(&s));
    }

    #[test]
    fn precision_criterion_tightens_with_samples() {
        let rule = StoppingRule::relative_precision(0.95, 0.05);
        let mut s = RunningStats::new();
        // mean 10, sd 1: needs roughly (1.96 / (0.05*10))^2 ≈ 16 samples.
        let mut satisfied_at = None;
        for i in 0..200 {
            s.push(10.0 + if i % 2 == 0 { 1.0 } else { -1.0 });
            if satisfied_at.is_none() && rule.is_satisfied(&s) {
                satisfied_at = Some(i + 1);
            }
        }
        let n = satisfied_at.expect("rule never satisfied");
        assert!((4..=64).contains(&n), "converged at unexpected n={n}");
    }

    #[test]
    fn zero_mean_without_hits_is_not_converged() {
        // A rare event with zero observed hits must keep sampling: the
        // relative criterion is undefined at mean zero, and stopping
        // instantly would certify an estimate backed by no information.
        let rule = StoppingRule::relative_precision(0.95, 0.1).with_min_samples(5);
        let mut s = RunningStats::new();
        s.extend(std::iter::repeat_n(0.0, 5));
        assert!(!rule.precision_reached(&s));
        assert!(!rule.is_satisfied(&s));
        // Only the replication cap ends such a run — flagged as not
        // converged.
        let capped = rule.with_max_samples(5);
        assert!(capped.is_satisfied(&s));
        assert!(!capped.precision_reached(&s));
    }

    #[test]
    fn non_finite_mean_is_not_converged() {
        let rule = StoppingRule::relative_precision(0.95, 0.1);
        let mut s = RunningStats::new();
        s.extend([f64::INFINITY, f64::INFINITY, f64::INFINITY]);
        assert!(!rule.precision_reached(&s));
        let mut nan = RunningStats::new();
        nan.extend([f64::NAN, 1.0, 2.0]);
        assert!(!rule.precision_reached(&nan));
    }

    #[test]
    fn nonzero_mean_with_zero_spread_still_converges() {
        let rule = StoppingRule::relative_precision(0.95, 0.1).with_min_samples(5);
        let mut s = RunningStats::new();
        s.extend(std::iter::repeat_n(3.0, 5));
        assert!(rule.is_satisfied(&s));
    }

    #[test]
    #[should_panic(expected = "relative precision must be positive")]
    fn rejects_nonpositive_precision() {
        StoppingRule::relative_precision(0.95, 0.0);
    }
}
