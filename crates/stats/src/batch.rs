//! Batch-means estimation for correlated (steady-state) output series.

use crate::ci::ConfidenceInterval;
use crate::welford::RunningStats;

/// Batch-means estimator: groups a correlated output stream into fixed
/// size batches and treats the batch averages as approximately i.i.d.
/// observations.
///
/// Used for steady-state measures (the transient `S(t)` study uses
/// independent replications instead; batch means backs the steady-state
/// utilization checks of the dynamicity model).
///
/// # Example
///
/// ```
/// use ahs_stats::BatchMeans;
///
/// let mut bm = BatchMeans::new(10);
/// for i in 0..100 {
///     bm.push(f64::from(i % 4));
/// }
/// assert_eq!(bm.completed_batches(), 10);
/// assert!((bm.mean() - 1.5).abs() < 1e-12);
/// ```
#[derive(Debug, Clone)]
pub struct BatchMeans {
    batch_size: u64,
    current_sum: f64,
    current_count: u64,
    batches: RunningStats,
}

impl BatchMeans {
    /// Creates an estimator with the given batch size.
    ///
    /// # Panics
    ///
    /// Panics if `batch_size == 0`.
    pub fn new(batch_size: u64) -> Self {
        assert!(batch_size > 0, "batch size must be positive");
        BatchMeans {
            batch_size,
            current_sum: 0.0,
            current_count: 0,
            batches: RunningStats::new(),
        }
    }

    /// Adds one raw observation.
    pub fn push(&mut self, x: f64) {
        self.current_sum += x;
        self.current_count += 1;
        if self.current_count == self.batch_size {
            self.batches.push(self.current_sum / self.batch_size as f64);
            self.current_sum = 0.0;
            self.current_count = 0;
        }
    }

    /// Number of completed batches.
    pub fn completed_batches(&self) -> u64 {
        self.batches.count()
    }

    /// Mean over completed batches.
    pub fn mean(&self) -> f64 {
        self.batches.mean()
    }

    /// Confidence interval treating batch means as i.i.d.
    pub fn confidence_interval(&self, confidence: f64) -> ConfidenceInterval {
        self.batches.confidence_interval(confidence)
    }

    /// The batch-level statistics.
    pub fn batch_stats(&self) -> &RunningStats {
        &self.batches
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partial_batch_not_counted() {
        let mut bm = BatchMeans::new(4);
        bm.push(1.0);
        bm.push(1.0);
        bm.push(1.0);
        assert_eq!(bm.completed_batches(), 0);
        bm.push(1.0);
        assert_eq!(bm.completed_batches(), 1);
        assert_eq!(bm.mean(), 1.0);
    }

    #[test]
    fn batch_means_reduce_variance_of_correlated_stream() {
        // An alternating stream is perfectly negatively correlated at
        // lag 1; batch means of even size have zero variance.
        let mut bm = BatchMeans::new(2);
        let mut raw = RunningStats::new();
        for i in 0..1000 {
            let x = (i % 2) as f64;
            bm.push(x);
            raw.push(x);
        }
        assert!(bm.batch_stats().sample_variance() < 1e-12);
        assert!(raw.sample_variance() > 0.2);
    }

    #[test]
    #[should_panic(expected = "batch size must be positive")]
    fn rejects_zero_batch() {
        BatchMeans::new(0);
    }
}
