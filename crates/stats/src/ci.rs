//! Confidence intervals and the quantile functions backing them.

/// A two-sided confidence interval `mean ± half_width` at a given
/// confidence level.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConfidenceInterval {
    mean: f64,
    half_width: f64,
    confidence: f64,
}

impl ConfidenceInterval {
    /// Creates an interval centred on `mean`.
    ///
    /// # Panics
    ///
    /// Panics if `confidence` is not in `(0, 1)` or `half_width` is
    /// negative or NaN.
    pub fn new(mean: f64, half_width: f64, confidence: f64) -> Self {
        assert!(
            confidence > 0.0 && confidence < 1.0,
            "confidence level must lie strictly between 0 and 1, got {confidence}"
        );
        assert!(
            half_width >= 0.0,
            "half-width must be non-negative, got {half_width}"
        );
        ConfidenceInterval {
            mean,
            half_width,
            confidence,
        }
    }

    /// A zero-width interval, used for empty estimators.
    pub fn degenerate(mean: f64) -> Self {
        ConfidenceInterval {
            mean,
            half_width: 0.0,
            confidence: 0.0,
        }
    }

    /// Interval centre.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Interval half-width.
    pub fn half_width(&self) -> f64 {
        self.half_width
    }

    /// Confidence level, e.g. `0.95`.
    pub fn confidence(&self) -> f64 {
        self.confidence
    }

    /// Lower bound.
    pub fn lower(&self) -> f64 {
        self.mean - self.half_width
    }

    /// Upper bound.
    pub fn upper(&self) -> f64 {
        self.mean + self.half_width
    }

    /// Whether `x` falls inside the interval (inclusive).
    pub fn contains(&self, x: f64) -> bool {
        x >= self.lower() && x <= self.upper()
    }

    /// Half-width relative to the magnitude of the mean, the convergence
    /// criterion used by the paper (`0.1` relative interval at 95%).
    /// Returns `+inf` for a zero mean with a non-zero half-width.
    pub fn relative_half_width(&self) -> f64 {
        if self.half_width == 0.0 {
            0.0
        } else if self.mean == 0.0 {
            f64::INFINITY
        } else {
            self.half_width / self.mean.abs()
        }
    }

    /// Whether two intervals overlap; the integration tests use this to
    /// check that independent solvers agree.
    pub fn overlaps(&self, other: &ConfidenceInterval) -> bool {
        self.lower() <= other.upper() && other.lower() <= self.upper()
    }
}

impl std::fmt::Display for ConfidenceInterval {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{:.6e} ± {:.2e} ({:.0}%)",
            self.mean,
            self.half_width,
            self.confidence * 100.0
        )
    }
}

/// Quantile function (inverse CDF) of the standard normal distribution.
///
/// Uses Acklam's rational approximation, accurate to about `1.15e-9`
/// absolute error over the full open interval.
///
/// # Panics
///
/// Panics if `p` is not in `(0, 1)`.
pub fn normal_quantile(p: f64) -> f64 {
    assert!(
        p > 0.0 && p < 1.0,
        "probability must lie strictly between 0 and 1, got {p}"
    );

    // Coefficients for Acklam's approximation, kept verbatim.
    #[allow(clippy::excessive_precision)]
    const A: [f64; 6] = [
        -3.969683028665376e+01,
        2.209460984245205e+02,
        -2.759285104469687e+02,
        1.383577518672690e+02,
        -3.066479806614716e+01,
        2.506628277459239e+00,
    ];
    const B: [f64; 5] = [
        -5.447609879822406e+01,
        1.615858368580409e+02,
        -1.556989798598866e+02,
        6.680131188771972e+01,
        -1.328068155288572e+01,
    ];
    const C: [f64; 6] = [
        -7.784894002430293e-03,
        -3.223964580411365e-01,
        -2.400758277161838e+00,
        -2.549732539343734e+00,
        4.374664141464968e+00,
        2.938163982698783e+00,
    ];
    const D: [f64; 4] = [
        7.784695709041462e-03,
        3.224671290700398e-01,
        2.445134137142996e+00,
        3.754408661907416e+00,
    ];
    const P_LOW: f64 = 0.02425;

    let x = if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    };

    // One step of Halley refinement using the normal CDF via erfc.
    let e = 0.5 * erfc(-x / std::f64::consts::SQRT_2) - p;
    let u = e * (2.0 * std::f64::consts::PI).sqrt() * (x * x / 2.0).exp();
    x - u / (1.0 + x * u / 2.0)
}

/// Complementary error function (Numerical Recipes rational Chebyshev
/// approximation, ~1.2e-7 relative accuracy, refined cases handled by the
/// Halley step in [`normal_quantile`]).
fn erfc(x: f64) -> f64 {
    let z = x.abs();
    let t = 1.0 / (1.0 + 0.5 * z);
    let ans = t
        * (-z * z - 1.26551223
            + t * (1.00002368
                + t * (0.37409196
                    + t * (0.09678418
                        + t * (-0.18628806
                            + t * (0.27886807
                                + t * (-1.13520398
                                    + t * (1.48851587 + t * (-0.82215223 + t * 0.17087277)))))))))
            .exp();
    if x >= 0.0 {
        ans
    } else {
        2.0 - ans
    }
}

/// Two-sided Student-t critical value `t_{(1+confidence)/2, df}`.
///
/// Uses Hill's asymptotic expansion of the t quantile around the normal
/// quantile; exact in the limit and accurate to a few parts in 10⁴ for
/// `df >= 3`, which is ample for simulation stopping rules. For `df == 1`
/// and `df == 2` the closed forms are used.
///
/// # Panics
///
/// Panics if `confidence` is not in `(0, 1)` or `df == 0`.
pub fn student_t_quantile(confidence: f64, df: u64) -> f64 {
    assert!(
        confidence > 0.0 && confidence < 1.0,
        "confidence level must lie strictly between 0 and 1, got {confidence}"
    );
    assert!(df > 0, "degrees of freedom must be positive");
    let p = (1.0 + confidence) / 2.0;

    match df {
        1 => (std::f64::consts::PI * (p - 0.5)).tan(),
        2 => {
            let a = 2.0 * p - 1.0;
            a * (2.0 / (1.0 - a * a)).sqrt()
        }
        _ => {
            let z = normal_quantile(p);
            let n = df as f64;
            let g1 = (z.powi(3) + z) / 4.0;
            let g2 = (5.0 * z.powi(5) + 16.0 * z.powi(3) + 3.0 * z) / 96.0;
            let g3 = (3.0 * z.powi(7) + 19.0 * z.powi(5) + 17.0 * z.powi(3) - 15.0 * z) / 384.0;
            let g4 = (79.0 * z.powi(9) + 776.0 * z.powi(7) + 1482.0 * z.powi(5)
                - 1920.0 * z.powi(3)
                - 945.0 * z)
                / 92160.0;
            z + g1 / n + g2 / (n * n) + g3 / n.powi(3) + g4 / n.powi(4)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normal_quantile_known_values() {
        // Reference values from standard normal tables.
        assert!((normal_quantile(0.5) - 0.0).abs() < 1e-6);
        assert!((normal_quantile(0.975) - 1.959_963_985).abs() < 1e-6);
        assert!((normal_quantile(0.995) - 2.575_829_304).abs() < 1e-6);
        assert!((normal_quantile(0.84134474) - 1.0).abs() < 1e-6);
        assert!((normal_quantile(1e-10) + 6.361_340_9).abs() < 1e-4);
    }

    #[test]
    fn normal_quantile_symmetry() {
        for &p in &[0.01, 0.1, 0.25, 0.4] {
            let lo = normal_quantile(p);
            let hi = normal_quantile(1.0 - p);
            assert!(
                (lo + hi).abs() < 1e-9,
                "quantiles not symmetric at p={p}: {lo} vs {hi}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "probability must lie strictly between 0 and 1")]
    fn normal_quantile_rejects_zero() {
        normal_quantile(0.0);
    }

    #[test]
    fn student_t_known_values() {
        // Reference critical values (two-sided 95%).
        assert!((student_t_quantile(0.95, 1) - 12.7062).abs() < 1e-3);
        assert!((student_t_quantile(0.95, 2) - 4.30265).abs() < 1e-4);
        assert!((student_t_quantile(0.95, 5) - 2.57058).abs() < 2e-3);
        assert!((student_t_quantile(0.95, 10) - 2.22814).abs() < 1e-3);
        assert!((student_t_quantile(0.95, 30) - 2.04227).abs() < 1e-3);
        assert!((student_t_quantile(0.95, 1000) - 1.96234).abs() < 1e-3);
    }

    #[test]
    fn student_t_approaches_normal() {
        let z = normal_quantile(0.975);
        let t = student_t_quantile(0.95, 1_000_000);
        assert!((z - t).abs() < 1e-4);
    }

    #[test]
    fn interval_accessors_and_containment() {
        let ci = ConfidenceInterval::new(10.0, 2.0, 0.95);
        assert_eq!(ci.lower(), 8.0);
        assert_eq!(ci.upper(), 12.0);
        assert!(ci.contains(8.0));
        assert!(ci.contains(12.0));
        assert!(!ci.contains(12.001));
        assert!((ci.relative_half_width() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn interval_overlap() {
        let a = ConfidenceInterval::new(1.0, 0.5, 0.95);
        let b = ConfidenceInterval::new(1.6, 0.2, 0.95);
        let c = ConfidenceInterval::new(3.0, 0.5, 0.95);
        assert!(a.overlaps(&b));
        assert!(b.overlaps(&a));
        assert!(!a.overlaps(&c));
    }

    #[test]
    fn relative_half_width_edge_cases() {
        assert_eq!(
            ConfidenceInterval::degenerate(0.0).relative_half_width(),
            0.0
        );
        let zero_mean = ConfidenceInterval::new(0.0, 1.0, 0.9);
        assert_eq!(zero_mean.relative_half_width(), f64::INFINITY);
    }

    #[test]
    #[should_panic(expected = "half-width must be non-negative")]
    fn interval_rejects_negative_width() {
        ConfidenceInterval::new(0.0, -1.0, 0.95);
    }
}
