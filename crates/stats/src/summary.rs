//! Lightweight tabular result formatting for the experiment harness.

use serde::{Deserialize, Serialize};

/// A simple rectangular table of string cells with a header row, used to
/// print figure/table reproductions in both Markdown and CSV.
///
/// # Example
///
/// ```
/// use ahs_stats::{format_markdown, Table};
///
/// let mut t = Table::new(vec!["t (h)".into(), "S(t)".into()]);
/// t.push_row(vec!["2".into(), "1.3e-9".into()]).unwrap();
/// let md = format_markdown(&t);
/// assert!(md.contains("| t (h) | S(t) |"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

/// Error returned when a row's width does not match the header.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RowWidthError {
    expected: usize,
    actual: usize,
}

impl std::fmt::Display for RowWidthError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "row has {} cells but the table header has {} columns",
            self.actual, self.expected
        )
    }
}

impl std::error::Error for RowWidthError {}

impl Table {
    /// Creates a table with the given header.
    ///
    /// # Panics
    ///
    /// Panics if the header is empty.
    pub fn new(header: Vec<String>) -> Self {
        assert!(!header.is_empty(), "table header must not be empty");
        Table {
            header,
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Errors
    ///
    /// Returns [`RowWidthError`] if the row width differs from the
    /// header width.
    pub fn push_row(&mut self, row: Vec<String>) -> Result<(), RowWidthError> {
        if row.len() != self.header.len() {
            return Err(RowWidthError {
                expected: self.header.len(),
                actual: row.len(),
            });
        }
        self.rows.push(row);
        Ok(())
    }

    /// Header cells.
    pub fn header(&self) -> &[String] {
        &self.header
    }

    /// Data rows.
    pub fn rows(&self) -> &[Vec<String>] {
        &self.rows
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

/// Renders a table as GitHub-flavoured Markdown.
pub fn format_markdown(table: &Table) -> String {
    let mut out = String::new();
    out.push_str("| ");
    out.push_str(&table.header().join(" | "));
    out.push_str(" |\n|");
    for _ in table.header() {
        out.push_str("---|");
    }
    out.push('\n');
    for row in table.rows() {
        out.push_str("| ");
        out.push_str(&row.join(" | "));
        out.push_str(" |\n");
    }
    out
}

/// Renders a table as CSV with minimal quoting (cells containing commas,
/// quotes, or newlines are quoted and inner quotes doubled).
pub fn format_csv(table: &Table) -> String {
    fn cell(s: &str) -> String {
        if s.contains([',', '"', '\n']) {
            format!("\"{}\"", s.replace('"', "\"\""))
        } else {
            s.to_owned()
        }
    }
    let mut out = String::new();
    out.push_str(
        &table
            .header()
            .iter()
            .map(|c| cell(c))
            .collect::<Vec<_>>()
            .join(","),
    );
    out.push('\n');
    for row in table.rows() {
        out.push_str(&row.iter().map(|c| cell(c)).collect::<Vec<_>>().join(","));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        let mut t = Table::new(vec!["a".into(), "b".into()]);
        t.push_row(vec!["1".into(), "x,y".into()]).unwrap();
        t.push_row(vec!["2".into(), "he said \"hi\"".into()])
            .unwrap();
        t
    }

    #[test]
    fn markdown_shape() {
        let md = format_markdown(&sample());
        let lines: Vec<&str> = md.lines().collect();
        assert_eq!(lines[0], "| a | b |");
        assert_eq!(lines[1], "|---|---|");
        assert_eq!(lines.len(), 4);
    }

    #[test]
    fn csv_quoting() {
        let csv = format_csv(&sample());
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "a,b");
        assert_eq!(lines[1], "1,\"x,y\"");
        assert_eq!(lines[2], "2,\"he said \"\"hi\"\"\"");
    }

    #[test]
    fn row_width_mismatch_is_error() {
        let mut t = Table::new(vec!["only".into()]);
        let err = t.push_row(vec!["a".into(), "b".into()]).unwrap_err();
        assert!(err.to_string().contains("2 cells"));
        assert!(t.is_empty());
    }
}
