//! Property-based tests of the statistical primitives.

use ahs_stats::{normal_quantile, Histogram, RunningStats, TimeGrid, WeightedStats};
use proptest::prelude::*;

proptest! {
    #[test]
    fn welford_merge_is_order_independent(
        xs in prop::collection::vec(-1e6f64..1e6, 1..60),
        split in 0usize..60,
    ) {
        let split = split.min(xs.len());
        let mut seq = RunningStats::new();
        seq.extend(xs.iter().copied());

        let mut a = RunningStats::new();
        a.extend(xs[..split].iter().copied());
        let mut b = RunningStats::new();
        b.extend(xs[split..].iter().copied());

        let mut ab = a;
        ab.merge(&b);
        let mut ba = b;
        ba.merge(&a);

        for m in [ab, ba] {
            prop_assert_eq!(m.count(), seq.count());
            prop_assert!((m.mean() - seq.mean()).abs() < 1e-6 * (1.0 + seq.mean().abs()));
            prop_assert!(
                (m.sample_variance() - seq.sample_variance()).abs()
                    < 1e-5 * (1.0 + seq.sample_variance())
            );
        }
    }

    #[test]
    fn welford_merge_is_associative(
        xs in prop::collection::vec(-1e6f64..1e6, 0..30),
        ys in prop::collection::vec(-1e6f64..1e6, 0..30),
        zs in prop::collection::vec(-1e6f64..1e6, 0..30),
    ) {
        // (a ⊕ b) ⊕ c must equal a ⊕ (b ⊕ c): the parallel runner may
        // fold worker results in any grouping.
        let acc = |v: &[f64]| {
            let mut s = RunningStats::new();
            s.extend(v.iter().copied());
            s
        };
        let (a, b, c) = (acc(&xs), acc(&ys), acc(&zs));

        let mut left = a;
        left.merge(&b);
        left.merge(&c);

        let mut bc = b;
        bc.merge(&c);
        let mut right = a;
        right.merge(&bc);

        prop_assert_eq!(left.count(), right.count());
        prop_assert!((left.mean() - right.mean()).abs() < 1e-6 * (1.0 + left.mean().abs()));
        prop_assert!(
            (left.sample_variance() - right.sample_variance()).abs()
                < 1e-5 * (1.0 + left.sample_variance())
        );
        prop_assert_eq!(left.min(), right.min());
        prop_assert_eq!(left.max(), right.max());
    }

    #[test]
    fn weighted_with_unit_weights_equals_unweighted(
        xs in prop::collection::vec(-1e3f64..1e3, 0..60),
    ) {
        // At weight 1 the importance-sampling estimator degenerates to
        // the plain estimator exactly (not just approximately).
        let mut w = WeightedStats::new();
        let mut p = RunningStats::new();
        for &x in &xs {
            w.push(x, 1.0);
            p.push(x);
        }
        prop_assert_eq!(w.count(), p.count());
        prop_assert_eq!(w.mean(), p.mean());
        prop_assert_eq!(w.sample_variance(), p.sample_variance());
        prop_assert_eq!(w.std_error(), p.std_error());
        if !xs.is_empty() {
            prop_assert!((w.mean_weight() - 1.0).abs() < 1e-12);
            prop_assert!((w.effective_sample_size() - xs.len() as f64).abs() < 1e-9);
        }
        let wc = w.confidence_interval(0.99);
        let pc = p.confidence_interval(0.99);
        prop_assert_eq!(wc.mean(), pc.mean());
        prop_assert_eq!(wc.half_width(), pc.half_width());
    }

    #[test]
    fn variance_is_never_negative(xs in prop::collection::vec(-1e9f64..1e9, 0..50)) {
        let mut s = RunningStats::new();
        s.extend(xs.iter().copied());
        prop_assert!(s.sample_variance() >= 0.0);
        prop_assert!(s.population_variance() >= 0.0);
        if s.count() > 0 {
            prop_assert!(s.min() <= s.mean() + 1e-6 * s.mean().abs().max(1.0));
            prop_assert!(s.max() >= s.mean() - 1e-6 * s.mean().abs().max(1.0));
        }
    }

    #[test]
    fn normal_quantile_is_monotone(a in 0.001f64..0.999, b in 0.001f64..0.999) {
        let (lo, hi) = if a < b { (a, b) } else { (b, a) };
        prop_assume!(hi - lo > 1e-9);
        prop_assert!(normal_quantile(lo) <= normal_quantile(hi));
    }

    #[test]
    fn weighted_stats_scale_with_weights(
        xs in prop::collection::vec(0f64..10.0, 2..40),
        factor in 0.1f64..10.0,
    ) {
        // Scaling all weights by a constant scales the mean estimate
        // by the same constant (the estimator is linear in w).
        let mut base = WeightedStats::new();
        let mut scaled = WeightedStats::new();
        for (i, &x) in xs.iter().enumerate() {
            let w = 1.0 + (i % 3) as f64;
            base.push(x, w);
            scaled.push(x, w * factor);
        }
        prop_assert!((scaled.mean() - base.mean() * factor).abs() < 1e-9 * factor.max(1.0));
        // Kish ESS is invariant under weight scaling.
        prop_assert!((scaled.effective_sample_size() - base.effective_sample_size()).abs() < 1e-6);
    }

    #[test]
    fn histogram_counts_everything(
        xs in prop::collection::vec(-5f64..15.0, 1..200),
    ) {
        let mut h = Histogram::new(0.0, 10.0, 7);
        for &x in &xs {
            h.record(x);
        }
        let binned: u64 = (0..h.num_bins()).map(|i| h.bin_count(i)).sum();
        prop_assert_eq!(binned + h.underflow() + h.overflow(), xs.len() as u64);
    }

    #[test]
    fn histogram_quantiles_are_monotone(
        xs in prop::collection::vec(0f64..10.0, 5..200),
        qa in 0f64..1.0,
        qb in 0f64..1.0,
    ) {
        let mut h = Histogram::new(0.0, 10.0, 16);
        for &x in &xs {
            h.record(x);
        }
        let (lo, hi) = if qa < qb { (qa, qb) } else { (qb, qa) };
        prop_assert!(h.quantile(lo) <= h.quantile(hi) + 1e-9);
    }

    #[test]
    fn curve_estimates_stay_in_unit_interval(
        hits in prop::collection::vec(prop::option::of(0.0f64..10.0), 1..100),
    ) {
        let grid = TimeGrid::linspace(1.0, 10.0, 4);
        let mut curve = ahs_stats::Curve::new(grid);
        for h in &hits {
            curve.record_first_passage(*h, 1.0);
        }
        let pts = curve.points(0.95);
        for w in pts.windows(2) {
            prop_assert!(w[0].y <= w[1].y + 1e-12, "curve must be non-decreasing");
        }
        for p in &pts {
            prop_assert!((0.0..=1.0).contains(&p.y));
        }
    }
}
