//! End-to-end tests of the `ahs-lint` binary: exit codes and output
//! formats, driven through the real CLI like the CI gate does.

use std::process::{Command, Output};

fn ahs_lint(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_ahs-lint"))
        .args(args)
        .output()
        .expect("ahs-lint binary runs")
}

#[test]
fn broken_fixtures_exit_nonzero() {
    for fixture in [
        "broken-case-sum",
        "broken-orphan",
        "broken-rate",
        "broken-gate",
    ] {
        let out = ahs_lint(&[fixture]);
        assert_eq!(
            out.status.code(),
            Some(1),
            "{fixture}: {}",
            String::from_utf8_lossy(&out.stdout)
        );
    }
}

#[test]
fn clean_demo_exits_zero() {
    let out = ahs_lint(&["clean-demo"]);
    assert_eq!(
        out.status.code(),
        Some(0),
        "{}",
        String::from_utf8_lossy(&out.stdout)
    );
}

#[test]
fn strategy_model_exits_zero() {
    // The CI gate runs all four; one is enough to keep the test quick —
    // the strategies share the composed model structure.
    let out = ahs_lint(&["dd"]);
    assert_eq!(
        out.status.code(),
        Some(0),
        "{}",
        String::from_utf8_lossy(&out.stdout)
    );
}

#[test]
fn strategy_model_without_allowlist_reports_the_sinks() {
    // Dropping the built-in v_KO/KO_total allowlist must surface the
    // intended absorbing states as deadlock errors — evidence the
    // allowlist is what certifies them, not a blind spot.
    let out = ahs_lint(&["dd", "--no-default-allow", "--max-states", "512"]);
    assert_eq!(out.status.code(), Some(1));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("absorbing"), "{text}");
}

#[test]
fn json_report_has_schema_and_summary() {
    let out = ahs_lint(&["broken-gate", "--format", "json"]);
    assert_eq!(out.status.code(), Some(1));
    let line = String::from_utf8_lossy(&out.stdout);
    for needle in [
        "\"schema\":\"ahs-lint-report/v1\"",
        "\"model\":\"broken-gate\"",
        "\"exploration\":",
        "\"summary\":",
        "\"diagnostics\":[",
        "\"pass\":\"gate-purity\"",
        "\"severity\":\"error\"",
    ] {
        assert!(line.contains(needle), "missing {needle} in {line}");
    }
}

#[test]
fn json_schema_file_stays_in_sync() {
    // The checked-in schema is what downstream consumers validate
    // against; keep its pass enum and top-level keys aligned with the
    // code. (No JSON-Schema validator is vendored, so this is a
    // structural cross-check, not full validation.)
    let schema = std::fs::read_to_string(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../tests/lint-report.schema.json"
    ))
    .expect("tests/lint-report.schema.json is checked in");
    assert!(schema.contains("\"ahs-lint-report/v1\""));
    for pass in ahs_lint::PASS_NAMES {
        assert!(
            schema.contains(&format!("\"{pass}\"")),
            "schema missing pass {pass}"
        );
    }
    for key in [
        "\"model\"",
        "\"exploration\"",
        "\"summary\"",
        "\"diagnostics\"",
    ] {
        assert!(schema.contains(key), "schema missing key {key}");
    }
}

#[test]
fn unknown_model_is_a_usage_error() {
    let out = ahs_lint(&["no-such-model"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown model"));
}

#[test]
fn list_prints_model_names() {
    let out = ahs_lint(&["--list"]);
    assert_eq!(out.status.code(), Some(0));
    let text = String::from_utf8_lossy(&out.stdout);
    for name in ["dd", "dc", "cd", "cc", "clean-demo", "broken-rate"] {
        assert!(text.lines().any(|l| l == name), "missing {name}");
    }
}
