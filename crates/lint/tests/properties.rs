//! Property-based robustness tests: randomly generated `SanBuilder`
//! models either build (and lint to a finite, internally consistent
//! report) or fail with a typed [`SanError`] — the toolchain never
//! panics on model-shaped input.

use ahs_lint::{LintConfig, Linter, Severity};
use ahs_san::{Delay, SanBuilder, SanError, SanModel};
use proptest::prelude::*;

/// Deterministic structure source so a single `u64` seed describes a
/// whole model (the vendored rng is reserved for execution semantics).
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 33
    }

    fn below(&mut self, bound: u64) -> u64 {
        self.next() % bound
    }
}

/// Builds a random small SAN: 2–5 simple places, 1–4 timed activities
/// with assorted delay kinds, case splits whose constant sums are
/// sometimes wrong, and occasional gates with or without accurate
/// `touches` declarations. Every closure is total, so any failure must
/// surface as a typed error or a diagnostic — never a panic.
fn random_model(seed: u64, strict: bool) -> Result<SanModel, SanError> {
    let mut r = Lcg(seed ^ 0x9e3779b97f4a7c15);
    let mut b = SanBuilder::new("random");
    if strict {
        b.validate_strict();
    }

    let n_places = 2 + r.below(4) as usize;
    let places: Vec<_> = (0..n_places)
        .map(|i| {
            b.place_with_tokens(&format!("p{i}"), r.below(3))
                .expect("fresh names cannot clash")
        })
        .collect();
    let pick = {
        let places = places.clone();
        move |r: &mut Lcg| places[r.below(n_places as u64) as usize]
    };

    let n_acts = 1 + r.below(4) as usize;
    for i in 0..n_acts {
        let delay = match r.below(4) {
            0 => Delay::exponential(0.5 + r.below(10) as f64),
            1 => Delay::Deterministic(r.below(3) as f64), // 0.0 is degenerate
            2 => {
                let p = pick(&mut r);
                Delay::exponential_fn(move |m| m.tokens(p) as f64 + 0.5)
            }
            _ => Delay::exponential(1.0),
        };
        let mut ab = b.timed_activity(&format!("a{i}"), delay)?;
        if r.below(4) > 0 {
            // Most activities have an input arc; the rest are
            // always-enabled (a structure warning, not a panic).
            ab = ab.input_place(pick(&mut r));
        }
        if r.below(2) == 0 {
            // Two constant cases with independent probabilities: the
            // sum is frequently wrong, which must be a typed error.
            let p = r.below(11) as f64 / 10.0;
            let q = r.below(11) as f64 / 10.0;
            ab = ab
                .case(p)
                .output_place(pick(&mut r))
                .case(q)
                .output_place(pick(&mut r));
        } else {
            ab = ab.output_place(pick(&mut r));
        }
        ab.build()?;
    }

    if r.below(2) == 0 {
        // A gated instantaneous activity; the gate declaration is
        // deliberately wrong half the time.
        let watched = pick(&mut r);
        let bumped = pick(&mut r);
        let honest = r.below(2) == 0;
        let declared = if honest {
            vec![watched, bumped]
        } else {
            vec![watched]
        };
        let gate = b.input_gate_touching(
            "guard",
            declared,
            move |m| m.tokens(watched) == 1,
            move |m| m.add_tokens(bumped, 1),
        );
        b.instant_activity("inst", 1, 1.0)?
            .input_place(pick(&mut r))
            .input_gate(gate)
            .output_place(pick(&mut r))
            .build()?;
    }
    b.build()
}

/// A linter tuned for many small runs.
fn linter() -> Linter {
    Linter::with_config(LintConfig {
        max_states: 256,
        max_samples: 64,
        ..LintConfig::default()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn random_models_build_and_lint_without_panicking(seed in any::<u64>()) {
        match random_model(seed, false) {
            Err(_) => {} // typed SanError: acceptable outcome
            Ok(model) => {
                let report = linter().lint(&model);
                // Exercise both renderings too — formatting must not panic.
                let _ = report.to_string();
                let _ = report.to_json();
            }
        }
    }

    #[test]
    fn reports_are_internally_consistent(seed in any::<u64>()) {
        let Ok(model) = random_model(seed, false) else { return Ok(()) };
        let report = linter().lint(&model);
        let total = report.count(Severity::Error)
            + report.count(Severity::Warning)
            + report.count(Severity::Info);
        prop_assert_eq!(total, report.diagnostics().len());
        prop_assert_eq!(report.has_errors(), report.count(Severity::Error) > 0);
        prop_assert_eq!(report.is_clean(), report.diagnostics().is_empty());
        // Ranked: severities never increase along the list.
        let sevs: Vec<_> = report.diagnostics().iter().map(|d| d.severity).collect();
        prop_assert!(sevs.windows(2).all(|w| w[0] >= w[1]));
        for d in report.diagnostics() {
            prop_assert!(ahs_lint::PASS_NAMES.contains(&d.pass));
        }
    }

    #[test]
    fn lint_clean_models_also_pass_strict_validation(seed in any::<u64>()) {
        // The builder's strict checks are a subset of the lint passes
        // (restricted to the initial marking), so a model with zero
        // findings must also build strictly.
        let Ok(model) = random_model(seed, false) else { return Ok(()) };
        if linter().lint(&model).is_clean() {
            prop_assert!(random_model(seed, true).is_ok());
        }
    }

    #[test]
    fn strict_builds_never_panic(seed in any::<u64>()) {
        match random_model(seed, true) {
            Ok(model) => prop_assert!(!model.name().is_empty()),
            Err(SanError::StrictValidation { diagnostics, .. }) => {
                prop_assert!(!diagnostics.is_empty());
            }
            Err(_) => {} // other typed builder error
        }
    }
}
