//! Diagnostics, severity ranking, and report serialization.

use std::fmt;

/// Severity of a diagnostic, ordered from least to most severe.
///
/// The CLI's exit code and the CI gate key off [`Severity::Error`]:
/// warnings and notes never fail a build, they are review material.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Informational note; not a defect.
    Info,
    /// Suspicious construction that the engine tolerates.
    Warning,
    /// A defect: the model is wrong or will fail at solve/simulate time.
    Error,
}

impl Severity {
    /// Lower-case label used in reports (`"error"`, `"warning"`,
    /// `"info"`).
    pub fn label(self) -> &'static str {
        match self {
            Severity::Info => "info",
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// One finding of a lint pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Stable pass identifier (e.g. `"case-probability"`).
    pub pass: &'static str,
    /// How bad it is.
    pub severity: Severity,
    /// The model element at fault (activity, place, or gate name).
    pub subject: String,
    /// Human-readable description of the defect.
    pub message: String,
}

impl Diagnostic {
    /// Convenience constructor.
    pub fn new(
        pass: &'static str,
        severity: Severity,
        subject: impl Into<String>,
        message: impl Into<String>,
    ) -> Self {
        Diagnostic {
            pass,
            severity,
            subject: subject.into(),
            message: message.into(),
        }
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}[{}] {}: {}",
            self.severity, self.pass, self.subject, self.message
        )
    }
}

/// The result of linting one model: every diagnostic, ranked most severe
/// first, plus exploration metadata needed to interpret the findings.
#[derive(Debug, Clone)]
pub struct Report {
    /// Name of the linted model.
    pub model: String,
    /// Number of reachable markings visited by the exploration passes.
    pub states_explored: usize,
    /// Whether exploration covered the full reachable set; when `false`
    /// (state budget hit), absence-based findings are downgraded to
    /// warnings because absence cannot be proven.
    pub exploration_complete: bool,
    diagnostics: Vec<Diagnostic>,
}

impl Report {
    /// Builds a report, sorting diagnostics by severity (most severe
    /// first), then pass, then subject.
    pub fn new(
        model: impl Into<String>,
        states_explored: usize,
        exploration_complete: bool,
        mut diagnostics: Vec<Diagnostic>,
    ) -> Self {
        diagnostics.sort_by(|a, b| {
            b.severity
                .cmp(&a.severity)
                .then_with(|| a.pass.cmp(b.pass))
                .then_with(|| a.subject.cmp(&b.subject))
        });
        Report {
            model: model.into(),
            states_explored,
            exploration_complete,
            diagnostics,
        }
    }

    /// All diagnostics, most severe first.
    pub fn diagnostics(&self) -> &[Diagnostic] {
        &self.diagnostics
    }

    /// Number of diagnostics at exactly `severity`.
    pub fn count(&self, severity: Severity) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == severity)
            .count()
    }

    /// Whether the report contains any [`Severity::Error`] diagnostic.
    pub fn has_errors(&self) -> bool {
        self.count(Severity::Error) > 0
    }

    /// Whether the report is entirely empty (no findings at all).
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// Serializes the report as a single JSON object.
    ///
    /// The schema is documented in `tests/lint-report.schema.json` at the
    /// workspace root and is what the CI gate consumes; treat field
    /// renames as breaking changes.
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(256 + self.diagnostics.len() * 128);
        s.push_str("{\"schema\":\"ahs-lint-report/v1\",\"model\":");
        push_json_string(&mut s, &self.model);
        s.push_str(",\"exploration\":{\"states\":");
        s.push_str(&self.states_explored.to_string());
        s.push_str(",\"complete\":");
        s.push_str(if self.exploration_complete {
            "true"
        } else {
            "false"
        });
        s.push_str("},\"summary\":{\"error\":");
        s.push_str(&self.count(Severity::Error).to_string());
        s.push_str(",\"warning\":");
        s.push_str(&self.count(Severity::Warning).to_string());
        s.push_str(",\"info\":");
        s.push_str(&self.count(Severity::Info).to_string());
        s.push_str("},\"diagnostics\":[");
        for (i, d) in self.diagnostics.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str("{\"pass\":");
            push_json_string(&mut s, d.pass);
            s.push_str(",\"severity\":");
            push_json_string(&mut s, d.severity.label());
            s.push_str(",\"subject\":");
            push_json_string(&mut s, &d.subject);
            s.push_str(",\"message\":");
            push_json_string(&mut s, &d.message);
            s.push('}');
        }
        s.push_str("]}");
        s
    }
}

impl fmt::Display for Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "lint report for `{}` ({} states explored{})",
            self.model,
            self.states_explored,
            if self.exploration_complete {
                ""
            } else {
                ", truncated"
            }
        )?;
        if self.diagnostics.is_empty() {
            writeln!(f, "  clean: no findings")?;
        }
        for d in &self.diagnostics {
            writeln!(f, "  {d}")?;
        }
        write!(
            f,
            "{} error(s), {} warning(s), {} note(s)",
            self.count(Severity::Error),
            self.count(Severity::Warning),
            self.count(Severity::Info)
        )
    }
}

/// Appends `value` to `out` as a JSON string literal (RFC 8259 escaping).
fn push_json_string(out: &mut String, value: &str) {
    out.push('"');
    for c in value.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn severity_orders_info_warning_error() {
        assert!(Severity::Info < Severity::Warning);
        assert!(Severity::Warning < Severity::Error);
        assert_eq!(Severity::Error.label(), "error");
    }

    #[test]
    fn report_sorts_most_severe_first() {
        let r = Report::new(
            "m",
            3,
            true,
            vec![
                Diagnostic::new("b-pass", Severity::Info, "x", "note"),
                Diagnostic::new("a-pass", Severity::Error, "y", "bad"),
                Diagnostic::new("a-pass", Severity::Warning, "z", "meh"),
            ],
        );
        let sevs: Vec<Severity> = r.diagnostics().iter().map(|d| d.severity).collect();
        assert_eq!(
            sevs,
            vec![Severity::Error, Severity::Warning, Severity::Info]
        );
        assert!(r.has_errors());
        assert!(!r.is_clean());
        assert_eq!(r.count(Severity::Warning), 1);
    }

    #[test]
    fn json_escapes_and_summarizes() {
        let r = Report::new(
            "quo\"te",
            1,
            false,
            vec![Diagnostic::new(
                "gate-purity",
                Severity::Error,
                "g1",
                "line1\nline2",
            )],
        );
        let json = r.to_json();
        assert!(json.contains("\"model\":\"quo\\\"te\""));
        assert!(json.contains("\"message\":\"line1\\nline2\""));
        assert!(json.contains("\"complete\":false"));
        assert!(json.contains("\"error\":1"));
        assert!(json.starts_with("{\"schema\":\"ahs-lint-report/v1\""));
    }

    #[test]
    fn clean_report_displays_clean() {
        let r = Report::new("m", 2, true, vec![]);
        let text = r.to_string();
        assert!(text.contains("clean"));
        assert!(text.contains("0 error(s)"));
        assert!(!r.has_errors());
    }
}
