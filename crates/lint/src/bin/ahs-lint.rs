//! `ahs-lint` — lint SAN models from the command line.
//!
//! ```text
//! ahs-lint [MODEL...] [--format text|json] [--n N] [--platoons P]
//!          [--max-states S] [--max-samples K] [--allow PATTERN]...
//!          [--deep [--deep-max-states S]] [--list]
//! ```
//!
//! `MODEL` is one of the four paper strategies (`dd`, `dc`, `cd`, `cc`),
//! `all` (the default: every strategy), `clean-demo`, or one of the
//! deliberately broken fixtures (`broken-case-sum`, `broken-orphan`,
//! `broken-rate`, `broken-gate`).
//!
//! Exit code: `0` when no model produced an error-severity diagnostic,
//! `1` when at least one did, `2` on usage errors. Warnings and notes
//! never affect the exit code — this is what the CI gate runs.

use std::io::Write;
use std::process::ExitCode;

use ahs_core::{AhsModel, Params, Strategy};
use ahs_lint::{fixtures, LintConfig, Linter};
use ahs_san::SanModel;

/// Best-effort stdout line: `println!` panics (exit 101) when the
/// reader closes the pipe early (`ahs-lint … | head`); a lint report cut
/// short is not an error.
macro_rules! outln {
    ($($fmt:tt)*) => {
        let _ = writeln!(std::io::stdout(), $($fmt)*);
    };
}

const USAGE: &str = "\
ahs-lint — static model verification for AHS stochastic activity networks

usage: ahs-lint [MODEL...] [flags]

models:
  dd | dc | cd | cc   one composed AHS strategy model
  all                 every strategy model (default)
  clean-demo          small model with no defects
  broken-case-sum     marking-dependent case probabilities summing to 0.9
  broken-orphan       place no arc or gate can touch
  broken-rate         marking-dependent rate that goes negative
  broken-gate         impure predicate gate + undeclared gate access

flags:
  --format F          text (default) or json (one report object per line)
  --n N               vehicles per platoon for strategy models (default 2)
  --platoons P        number of platoons, 2..=8 (default 2)
  --max-states S      reachability state budget (default 4096)
  --max-samples K     per-element marking sample cap (default 256)
  --allow PATTERN     extra allowlisted absorbing place-name substring
                      (strategy models always allow v_KO and KO_total)
  --no-default-allow  drop the built-in v_KO/KO_total allowlist
  --deep              follow the bounded passes with the exhaustive
                      ahs-check model checker (model-check pass; proves
                      absorption/escalation/boundedness, reconciles
                      dead-activity findings against the exact dead set)
  --deep-max-states S exhaustive-exploration state budget (default 524288)
  --list              list model names and exit

exit code: 0 = no errors, 1 = at least one error diagnostic, 2 = usage";

fn main() -> ExitCode {
    match run(&std::env::args().skip(1).collect::<Vec<_>>()) {
        // Run outcomes use the workspace-shared mapping; usage errors
        // are not a run outcome and keep the conventional 2.
        Ok(clean) => if clean {
            ahs_obs::RunOutcome::Success
        } else {
            ahs_obs::RunOutcome::Failure
        }
        .exit_code(),
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!("{USAGE}");
            ExitCode::from(2)
        }
    }
}

/// Parses arguments, lints every requested model, prints the reports.
/// Returns `Ok(true)` when no error-severity diagnostic was produced.
fn run(args: &[String]) -> Result<bool, String> {
    let mut models: Vec<String> = Vec::new();
    let mut format = Format::Text;
    let mut n = 2usize;
    let mut platoons = 2usize;
    let mut max_states = LintConfig::default().max_states;
    let mut max_samples = LintConfig::default().max_samples;
    let mut extra_allow: Vec<String> = Vec::new();
    let mut default_allow = true;
    let mut deep = false;
    let mut deep_max_states = 1usize << 19;

    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--help" | "-h" | "help" => {
                outln!("{USAGE}");
                return Ok(true);
            }
            "--list" => {
                for name in MODEL_NAMES {
                    outln!("{name}");
                }
                return Ok(true);
            }
            "--format" => {
                format = match next_value(&mut it, "--format")? {
                    "text" => Format::Text,
                    "json" => Format::Json,
                    other => return Err(format!("unknown format `{other}`")),
                };
            }
            "--n" => n = parse(next_value(&mut it, "--n")?, "--n")?,
            "--platoons" => platoons = parse(next_value(&mut it, "--platoons")?, "--platoons")?,
            "--max-states" => {
                max_states = parse(next_value(&mut it, "--max-states")?, "--max-states")?;
            }
            "--max-samples" => {
                max_samples = parse(next_value(&mut it, "--max-samples")?, "--max-samples")?;
            }
            "--allow" => extra_allow.push(next_value(&mut it, "--allow")?.to_owned()),
            "--no-default-allow" => default_allow = false,
            "--deep" => deep = true,
            "--deep-max-states" => {
                deep_max_states = parse(
                    next_value(&mut it, "--deep-max-states")?,
                    "--deep-max-states",
                )?;
            }
            flag if flag.starts_with('-') => return Err(format!("unknown flag `{flag}`")),
            name => models.push(name.to_ascii_lowercase()),
        }
    }
    if models.is_empty() || models.iter().any(|m| m == "all") {
        models = vec!["dd".into(), "dc".into(), "cd".into(), "cc".into()];
    }

    let mut any_error = false;
    for name in &models {
        let (model, is_strategy) = build_model(name, n, platoons)?;
        let mut allowlist = extra_allow.clone();
        if is_strategy && default_allow {
            allowlist.extend(LintConfig::ahs_allowlist());
        }
        let linter = Linter::with_config(LintConfig {
            max_states,
            max_samples,
            absorbing_allowlist: allowlist,
            ..LintConfig::default()
        });
        let mut report = if deep {
            linter.lint_deep(&model, deep_max_states)
        } else {
            linter.lint(&model)
        };
        // All four strategy variants build a SAN called "ahs"; label the
        // report with the CLI key so `all --format json` stays tellable
        // apart.
        report.model = name.clone();
        match format {
            Format::Text => {
                outln!("{report}\n");
            }
            Format::Json => {
                outln!("{}", report.to_json());
            }
        }
        any_error |= report.has_errors();
    }
    Ok(!any_error)
}

#[derive(Clone, Copy)]
enum Format {
    Text,
    Json,
}

const MODEL_NAMES: [&str; 10] = [
    "dd",
    "dc",
    "cd",
    "cc",
    "all",
    "clean-demo",
    "broken-case-sum",
    "broken-orphan",
    "broken-rate",
    "broken-gate",
];

/// Builds the named model; the flag says whether it is an AHS strategy
/// model (and should get the default sink allowlist).
fn build_model(name: &str, n: usize, platoons: usize) -> Result<(SanModel, bool), String> {
    let strategy = match name {
        "dd" => Some(Strategy::Dd),
        "dc" => Some(Strategy::Dc),
        "cd" => Some(Strategy::Cd),
        "cc" => Some(Strategy::Cc),
        _ => None,
    };
    if let Some(strategy) = strategy {
        let params = Params::builder()
            .n(n)
            .platoons(platoons)
            .strategy(strategy)
            .build()
            .map_err(|e| e.to_string())?;
        let (san, _) = AhsModel::build(&params)
            .map_err(|e| format!("building `{name}`: {e}"))?
            .into_san();
        return Ok((san, true));
    }
    let model = match name {
        "clean-demo" => fixtures::clean_demo(),
        "broken-case-sum" => fixtures::broken_case_sum(),
        "broken-orphan" => fixtures::broken_orphan(),
        "broken-rate" => fixtures::broken_rate(),
        "broken-gate" => fixtures::broken_gate(),
        other => return Err(format!("unknown model `{other}` (try --list)")),
    };
    Ok((model, false))
}

fn next_value<'a>(it: &mut std::slice::Iter<'a, String>, flag: &str) -> Result<&'a str, String> {
    it.next()
        .map(String::as_str)
        .ok_or_else(|| format!("flag {flag} expects a value"))
}

fn parse<T: std::str::FromStr>(value: &str, flag: &str) -> Result<T, String>
where
    T::Err: std::fmt::Display,
{
    value
        .parse()
        .map_err(|e| format!("invalid value `{value}` for {flag}: {e}"))
}
