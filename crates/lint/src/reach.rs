//! Bounded reachability over *raw* markings.
//!
//! The CTMC backend ([`ahs_ctmc::SanMarkovModel`]) folds instantaneous
//! cascades away and only ever sees stable markings. The linter needs
//! more: unstable markings are exactly where instantaneous-activity
//! confusion lives, and dead-activity analysis must observe every
//! marking in which an activity could become eligible. So the linter
//! explores with a *micro-step* model: from an unstable marking the
//! successors are the firings of the top-priority instantaneous
//! activities, from a stable marking the firings of the enabled timed
//! activities; all transitions get unit rate (only reachability matters,
//! not timing). The BFS itself is reused from
//! [`ahs_ctmc::StateSpace::explore_truncated`].

use ahs_ctmc::{MarkovModel, StateSpace};
use ahs_san::{Marking, SanModel};

/// Unit-rate micro-step adapter: exposes a SAN's *marking graph*
/// (stable and unstable markings alike) as a [`MarkovModel`] so the
/// CTMC crate's exploration machinery can walk it.
struct UnitRateSan<'m> {
    model: &'m SanModel,
}

impl MarkovModel for UnitRateSan<'_> {
    type State = Marking;

    fn initial_states(&self) -> Vec<(Marking, f64)> {
        vec![(self.model.initial_marking().clone(), 1.0)]
    }

    fn transitions(&self, m: &Marking) -> Vec<(Marking, f64)> {
        let enabled = if self.model.is_stable(m) {
            self.model.enabled_timed(m)
        } else {
            self.model.enabled_instantaneous(m)
        };
        let mut out = Vec::new();
        for a in enabled {
            for case in 0..self.model.activity(a).cases().len() {
                // A case whose probability evaluates to exactly 0 in this
                // marking cannot be taken (matches `stable_successors`);
                // exploring it would fabricate unreachable states. Bad
                // probabilities (negative, NaN) are still explored — the
                // case-probability pass reports them, and suppressing the
                // successors would hide further defects behind them.
                let p = self.model.activity(a).cases()[case].probability(m);
                if p == 0.0 {
                    continue;
                }
                let mut next = m.clone();
                self.model.fire(a, case, &mut next);
                out.push((next, 1.0));
            }
        }
        out
    }
}

/// The set of reachable markings found within a state budget.
#[derive(Debug, Clone)]
pub struct ReachSet {
    markings: Vec<Marking>,
    complete: bool,
}

impl ReachSet {
    /// Explores from the initial marking, visiting at most `max_states`
    /// markings (stable and unstable). Never fails: hitting the budget
    /// yields a truncated set with [`ReachSet::complete`] `false`.
    pub fn explore(model: &SanModel, max_states: usize) -> ReachSet {
        let (space, complete) =
            StateSpace::explore_truncated(&UnitRateSan { model }, max_states.max(1))
                .expect("unit-rate exploration cannot produce an invalid rate");
        ReachSet {
            markings: space.states().to_vec(),
            complete,
        }
    }

    /// Every visited marking, in BFS order (the initial marking first).
    pub fn markings(&self) -> &[Marking] {
        &self.markings
    }

    /// Number of visited markings.
    pub fn len(&self) -> usize {
        self.markings.len()
    }

    /// Whether no marking was visited (only possible with a zero model).
    pub fn is_empty(&self) -> bool {
        self.markings.is_empty()
    }

    /// `true` when the whole reachable set was visited; `false` when the
    /// budget truncated the search (absence of a finding is then not a
    /// proof of absence).
    pub fn complete(&self) -> bool {
        self.complete
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ahs_san::{Delay, SanBuilder};

    /// p0 --t--> p1 --i--> p2: exploration must surface the unstable
    /// intermediate marking (p1 marked) that the CTMC adapter folds away.
    #[test]
    fn visits_unstable_markings() {
        let mut b = SanBuilder::new("chain");
        let p0 = b.place_with_tokens("p0", 1).unwrap();
        let p1 = b.place("p1").unwrap();
        let p2 = b.place("p2").unwrap();
        b.timed_activity("t", Delay::exponential(1.0))
            .unwrap()
            .input_place(p0)
            .output_place(p1)
            .build()
            .unwrap();
        b.instant_activity("i", 0, 1.0)
            .unwrap()
            .input_place(p1)
            .output_place(p2)
            .build()
            .unwrap();
        let model = b.build().unwrap();
        let reach = ReachSet::explore(&model, 100);
        assert!(reach.complete());
        assert_eq!(reach.len(), 3);
        assert!(reach.markings().iter().any(|m| m.is_marked(p1)));
        assert!(reach.markings().iter().any(|m| m.is_marked(p2)));
    }

    #[test]
    fn truncates_at_budget_instead_of_failing() {
        // Unbounded counter: t deposits into p forever.
        let mut b = SanBuilder::new("unbounded");
        let src = b.place_with_tokens("src", 1).unwrap();
        let p = b.place("p").unwrap();
        b.timed_activity("t", Delay::exponential(1.0))
            .unwrap()
            .input_place(src)
            .output_place(src)
            .output_place(p)
            .build()
            .unwrap();
        let model = b.build().unwrap();
        let reach = ReachSet::explore(&model, 8);
        assert!(!reach.complete());
        assert_eq!(reach.len(), 8);
    }

    #[test]
    fn zero_probability_cases_are_not_explored() {
        let mut b = SanBuilder::new("zerocase");
        let src = b.place_with_tokens("src", 1).unwrap();
        let live = b.place("live").unwrap();
        let ghost = b.place("ghost").unwrap();
        let ghost2 = b.place("ghost_sink").unwrap();
        b.timed_activity("t", Delay::exponential(1.0))
            .unwrap()
            .input_place(src)
            .case(1.0)
            .output_place(live)
            .case(0.0)
            .output_place(ghost)
            .build()
            .unwrap();
        // Give `ghost` an outgoing arc so it is not arc-isolated; it is
        // still unreachable because its producing case has probability 0.
        b.timed_activity("g", Delay::exponential(1.0))
            .unwrap()
            .input_place(ghost)
            .output_place(ghost2)
            .build()
            .unwrap();
        let model = b.build().unwrap();
        let reach = ReachSet::explore(&model, 100);
        assert!(reach.complete());
        assert!(reach.markings().iter().all(|m| !m.is_marked(ghost)));
        assert!(reach.markings().iter().any(|m| m.is_marked(live)));
    }
}
