//! `ahs-lint`: static model verification for SAN models.
//!
//! The DSN 2009 AHS safety study rests entirely on the correctness of
//! its stochastic activity networks — a mis-summed case distribution or
//! an accidentally absorbing marking silently skews the unsafety curve
//! rather than crashing. This crate is the model-level analogue of a
//! compiler's lint stage: it takes any built
//! [`SanModel`](ahs_san::SanModel), runs a fixed pipeline of
//! verification passes over it, and produces a severity-ranked
//! [`Report`] (human-readable and JSON).
//!
//! The passes:
//!
//! 1. **structure** — orphan places, always-enabled and arc-silent
//!    activities, refined by gate `touches` declarations;
//! 2. **case-probability** — constant case distributions checked
//!    exactly; marking-dependent ones sampled over reachable markings;
//! 3. **dead-activity** — activities that can never fire within the
//!    explored state space (including instantaneous activities forever
//!    shadowed by higher priorities);
//! 4. **absorbing** — reachable deadlocks, i.e. absorbing markings not
//!    covered by the sink allowlist (the paper's `v_KO` / `KO_total`
//!    states are *intended* sinks);
//! 5. **confusion** — equal-priority instantaneous activities enabled
//!    together whose effects do not commute;
//! 6. **gate-purity** — gate closures run against instrumented shadow
//!    markings; purity claims and `touches` declarations are verified,
//!    not trusted;
//! 7. **write-set** — the dependency graph's per-activity read/write
//!    sets (which drive incremental enablement in the simulators) are
//!    checked against traced `is_enabled` and `fire` executions;
//! 8. **delay-sanity** — degenerate zero-width delays and
//!    marking-dependent rates that go non-positive while enabled.
//!
//! Reachability is bounded ([`LintConfig::max_states`]); when the
//! budget truncates exploration, absence-based findings (pass 3) are
//! downgraded from error to warning because absence is no longer
//! proven, and [`Report::exploration_complete`] says so.
//!
//! # Example
//!
//! ```
//! use ahs_lint::Linter;
//!
//! let model = ahs_lint::fixtures::broken_case_sum();
//! let report = Linter::new().lint(&model);
//! assert!(report.has_errors());
//! assert_eq!(report.diagnostics()[0].pass, "case-probability");
//!
//! let clean = ahs_lint::fixtures::clean_demo();
//! assert!(Linter::new().lint(&clean).is_clean());
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod diag;
pub mod fixtures;
mod passes;
mod reach;

pub use diag::{Diagnostic, Report, Severity};
pub use passes::PASS_NAMES;
pub use reach::ReachSet;

use ahs_san::SanModel;

/// Tuning knobs for a lint run.
#[derive(Debug, Clone)]
pub struct LintConfig {
    /// State budget for bounded reachability (stable *and* unstable
    /// markings count). Exceeding it truncates exploration rather than
    /// failing; see [`Report::exploration_complete`].
    pub max_states: usize,
    /// Tolerance for constant case-probability sums.
    pub epsilon: f64,
    /// Per-element sample cap used by the marking-sampling passes
    /// (case distributions, gate traces, confusion pairs, rates).
    pub max_samples: usize,
    /// Place-name substrings marking *intended* absorbing states: an
    /// absorbing marking is legal iff it marks a place whose name
    /// contains one of these patterns.
    pub absorbing_allowlist: Vec<String>,
}

impl Default for LintConfig {
    fn default() -> Self {
        LintConfig {
            max_states: 4096,
            epsilon: 1e-6,
            max_samples: 256,
            absorbing_allowlist: Vec::new(),
        }
    }
}

impl LintConfig {
    /// The allowlist used for the paper's AHS models: vehicle-level
    /// (`v_KO`) and system-level (`KO_total`) catastrophic sinks are
    /// intended absorbing states — the unsafety measure *is* the
    /// probability of reaching them.
    pub fn ahs_allowlist() -> Vec<String> {
        vec!["v_KO".to_owned(), "KO_total".to_owned()]
    }
}

/// The pass manager: runs every lint pass over a model and collects the
/// findings into a [`Report`].
#[derive(Debug, Clone, Default)]
pub struct Linter {
    config: LintConfig,
}

impl Linter {
    /// A linter with the default configuration.
    pub fn new() -> Self {
        Linter::default()
    }

    /// A linter with an explicit configuration.
    pub fn with_config(config: LintConfig) -> Self {
        Linter { config }
    }

    /// The active configuration.
    pub fn config(&self) -> &LintConfig {
        &self.config
    }

    /// Lints `model`: explores bounded reachability once, feeds it to
    /// every pass, and returns the ranked report.
    pub fn lint(&self, model: &SanModel) -> Report {
        let reach = reach::ReachSet::explore(model, self.config.max_states);
        let diagnostics = self.run_passes(model, &reach);
        Report::new(model.name(), reach.len(), reach.complete(), diagnostics)
    }

    /// Like [`Linter::lint`], but follows the bounded passes with the
    /// exhaustive `ahs-check` model checker as a deep stage, exploring
    /// up to `deep_max_states` markings.
    ///
    /// The deep stage does three things the bounded passes cannot:
    ///
    /// - proves (rather than samples) absorption, escalation soundness,
    ///   and boundedness, reporting violations with minimal
    ///   counterexample traces under the `model-check` pass;
    /// - reconciles the bounded `dead-activity` findings against the
    ///   exact dead set — confirmed findings are upgraded to proof
    ///   language, refuted ones retracted to an info note;
    /// - warns when even the deep budget truncates, so a clean report
    ///   is never mistaken for a proof.
    pub fn lint_deep(&self, model: &SanModel, deep_max_states: usize) -> Report {
        let reach = reach::ReachSet::explore(model, self.config.max_states);
        let mut diagnostics = self.run_passes(model, &reach);
        let checker = ahs_check::Checker::with_config(ahs_check::CheckConfig {
            max_states: deep_max_states,
            absorbing_allowlist: self.config.absorbing_allowlist.clone(),
            ..ahs_check::CheckConfig::default()
        });
        let outcome = checker
            .check(model)
            .expect("exploration without an interrupt flag cannot fail");
        if outcome.graph.complete() {
            diagnostics = passes::dead::reconcile(diagnostics, &outcome.dead_activities);
        }
        diagnostics.extend(passes::model_check::run(&outcome));
        Report::new(model.name(), reach.len(), reach.complete(), diagnostics)
    }

    fn run_passes(&self, model: &SanModel, reach: &ReachSet) -> Vec<Diagnostic> {
        let mut diagnostics = Vec::new();
        diagnostics.extend(passes::structure::run(model, &self.config));
        diagnostics.extend(passes::case_prob::run(model, reach, &self.config));
        diagnostics.extend(passes::dead::run(model, reach, &self.config));
        diagnostics.extend(passes::absorbing::run(model, reach, &self.config));
        diagnostics.extend(passes::confusion::run(model, reach, &self.config));
        diagnostics.extend(passes::gate_purity::run(model, reach, &self.config));
        diagnostics.extend(passes::write_set::run(model, reach, &self.config));
        diagnostics.extend(passes::delay_sanity::run(model, reach, &self.config));
        diagnostics
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_fixture_is_clean() {
        let report = Linter::new().lint(&fixtures::clean_demo());
        assert!(report.is_clean(), "{report}");
        assert!(report.exploration_complete);
    }

    #[test]
    fn every_broken_fixture_trips_its_pass() {
        let cases: [(ahs_san::SanModel, &str); 4] = [
            (fixtures::broken_case_sum(), "case-probability"),
            (fixtures::broken_orphan(), "structure"),
            (fixtures::broken_rate(), "delay-sanity"),
            (fixtures::broken_gate(), "gate-purity"),
        ];
        for (model, pass) in cases {
            let report = Linter::new().lint(&model);
            assert!(
                report
                    .diagnostics()
                    .iter()
                    .any(|d| d.pass == pass && d.severity == Severity::Error),
                "fixture `{}` did not produce an error from pass `{pass}`: {report}",
                report.model,
            );
        }
    }

    #[test]
    fn deep_lint_confirms_clean_model() {
        let model = ahs_check::fixtures::escalation_chain();
        let linter = Linter::with_config(LintConfig {
            absorbing_allowlist: LintConfig::ahs_allowlist(),
            ..LintConfig::default()
        });
        let report = linter.lint_deep(&model, 1 << 12);
        assert!(report.is_clean(), "{report}");
    }

    #[test]
    fn deep_lint_reports_model_check_violation_with_trace() {
        let model = ahs_check::fixtures::broken_escalation();
        let linter = Linter::with_config(LintConfig {
            absorbing_allowlist: LintConfig::ahs_allowlist(),
            ..LintConfig::default()
        });
        let report = linter.lint_deep(&model, 1 << 12);
        let deep = report
            .diagnostics()
            .iter()
            .find(|d| d.pass == "model-check" && d.severity == Severity::Error)
            .expect("deep stage must report the absorption violation");
        assert!(deep.message.contains("trace: fail -> escalate"), "{deep}");
        assert!(deep.message.contains("replay confirmed"), "{deep}");
    }

    #[test]
    fn deep_lint_retracts_bounded_dead_artifacts() {
        use ahs_san::{Delay, SanBuilder};
        // A 20-step token chain: a bounded budget of 5 markings flags
        // the tail activities as dead; the exhaustive checker proves
        // them live and the findings are retracted to info notes.
        let mut b = SanBuilder::new("chain20");
        let places: Vec<_> = (0..21)
            .map(|i| {
                if i == 0 {
                    b.place_with_tokens("p0", 1).unwrap()
                } else {
                    b.place(&format!("p{i}")).unwrap()
                }
            })
            .collect();
        for i in 0..20 {
            b.timed_activity(&format!("step{i}"), Delay::exponential(1.0))
                .unwrap()
                .input_place(places[i])
                .output_place(places[i + 1])
                .build()
                .unwrap();
        }
        let model = b.build().unwrap();
        let linter = Linter::with_config(LintConfig {
            max_states: 5,
            absorbing_allowlist: vec!["p20".to_owned()],
            ..LintConfig::default()
        });
        let shallow = linter.lint(&model);
        assert!(shallow
            .diagnostics()
            .iter()
            .any(|d| d.pass == "dead-activity" && d.severity > Severity::Info));
        let deep = linter.lint_deep(&model, 1 << 10);
        assert!(
            deep.diagnostics()
                .iter()
                .filter(|d| d.pass == "dead-activity")
                .all(|d| d.severity == Severity::Info),
            "{deep}"
        );
        assert!(!deep.has_errors(), "{deep}");
    }

    #[test]
    fn pass_names_are_unique_and_match_reports() {
        let mut names = PASS_NAMES.to_vec();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), PASS_NAMES.len());
        let report = Linter::new().lint(&fixtures::broken_gate());
        for d in report.diagnostics() {
            assert!(PASS_NAMES.contains(&d.pass), "unknown pass `{}`", d.pass);
        }
    }
}
