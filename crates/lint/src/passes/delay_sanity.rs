//! Delay-parameter sanity pass.
//!
//! Constant delay parameters are validated by the builder, so by the
//! time a model exists the remaining hazards are (a) *degenerate*
//! zero-width delays — a "timed" activity that fires immediately, which
//! is what instantaneous activities are for — and (b) marking-dependent
//! exponential rates, which are opaque closures. The latter are sampled
//! over reachable markings in which the activity is enabled: a negative
//! or non-finite rate is an error (the simulator panics on it, the CTMC
//! generator rejects it), a rate of exactly 0 while enabled is a
//! warning (the CTMC backend treats it as disabled, the discrete-event
//! backend panics — disable with a gate instead).

use ahs_san::{Delay, RateFn, SanModel, Timing};

use crate::diag::{Diagnostic, Severity};
use crate::reach::ReachSet;
use crate::LintConfig;

/// Pass identifier.
pub const NAME: &str = "delay-sanity";

pub(crate) fn run(model: &SanModel, reach: &ReachSet, cfg: &LintConfig) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for act in model.activities() {
        let Timing::Timed(delay) = act.timing() else {
            continue;
        };
        let id = model
            .find_activity(act.name())
            .expect("activity must resolve by name");

        // Defense in depth: the builder validates constant parameters,
        // but models can also arrive through other constructors.
        if let Err(reason) = delay.validate() {
            out.push(Diagnostic::new(
                NAME,
                Severity::Error,
                act.name().to_owned(),
                reason,
            ));
            continue;
        }
        if delay.is_degenerate() {
            out.push(Diagnostic::new(
                NAME,
                Severity::Warning,
                act.name().to_owned(),
                "zero-width delay: the activity fires the instant it is enabled; \
                 use an instantaneous activity instead",
            ));
        }

        let Delay::Exponential(RateFn::MarkingDependent(_)) = delay else {
            continue;
        };
        let mut sampled = 0usize;
        let mut zero_seen = false;
        for m in reach.markings() {
            if sampled >= cfg.max_samples {
                break;
            }
            if !model.is_stable(m) || !model.is_enabled(id, m) {
                continue;
            }
            sampled += 1;
            let rate = model
                .exponential_rate(id, m)
                .expect("exponential delay must yield a rate");
            if !rate.is_finite() || rate < 0.0 {
                out.push(Diagnostic::new(
                    NAME,
                    Severity::Error,
                    act.name().to_owned(),
                    format!(
                        "marking-dependent rate evaluates to {rate} in a reachable \
                         marking where the activity is enabled"
                    ),
                ));
                break;
            }
            if rate == 0.0 {
                zero_seen = true;
            }
        }
        if zero_seen {
            out.push(Diagnostic::new(
                NAME,
                Severity::Warning,
                act.name().to_owned(),
                "marking-dependent rate is 0 while the activity is enabled; the \
                 simulation backend panics on this — disable the activity with an \
                 input gate instead of a zero rate",
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ahs_san::{Delay, SanBuilder};

    fn lint(model: &SanModel) -> Vec<Diagnostic> {
        let cfg = LintConfig::default();
        let reach = ReachSet::explore(model, cfg.max_states);
        run(model, &reach, &cfg)
    }

    #[test]
    fn healthy_delays_pass() {
        let mut b = SanBuilder::new("ok");
        let p = b.place_with_tokens("p", 1).unwrap();
        let q = b.place("q").unwrap();
        b.timed_activity("exp", Delay::exponential(2.0))
            .unwrap()
            .input_place(p)
            .output_place(q)
            .build()
            .unwrap();
        b.timed_activity("erl", Delay::Erlang { k: 3, rate: 1.0 })
            .unwrap()
            .input_place(q)
            .output_place(p)
            .build()
            .unwrap();
        assert!(lint(&b.build().unwrap()).is_empty());
    }

    #[test]
    fn negative_marking_dependent_rate_is_an_error() {
        let mut b = SanBuilder::new("neg");
        let p = b.place_with_tokens("p", 1).unwrap();
        // Rate goes negative as soon as `p` drops below 3 tokens.
        b.timed_activity(
            "t",
            Delay::exponential_fn(move |m| m.tokens(p) as f64 - 3.0),
        )
        .unwrap()
        .input_place(p)
        .output_place(p)
        .build()
        .unwrap();
        let diags = lint(&b.build().unwrap());
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].severity, Severity::Error);
        assert!(diags[0].message.contains("-2"));
    }

    #[test]
    fn zero_rate_while_enabled_is_a_warning() {
        let mut b = SanBuilder::new("zero");
        let p = b.place_with_tokens("p", 2).unwrap();
        let q = b.place("q").unwrap();
        // Rate hits exactly 0 when only one token is left.
        b.timed_activity(
            "t",
            Delay::exponential_fn(move |m| m.tokens(p) as f64 - 1.0),
        )
        .unwrap()
        .input_place(p)
        .output_place(q)
        .build()
        .unwrap();
        let diags = lint(&b.build().unwrap());
        assert!(diags
            .iter()
            .any(|d| d.severity == Severity::Warning && d.message.contains("rate is 0")));
        assert!(diags.iter().all(|d| d.severity != Severity::Error));
    }

    #[test]
    fn degenerate_deterministic_delay_is_a_warning() {
        let mut b = SanBuilder::new("degenerate");
        let p = b.place_with_tokens("p", 1).unwrap();
        let q = b.place("q").unwrap();
        b.timed_activity("instant_in_disguise", Delay::Deterministic(0.0))
            .unwrap()
            .input_place(p)
            .output_place(q)
            .build()
            .unwrap();
        let diags = lint(&b.build().unwrap());
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].severity, Severity::Warning);
        assert!(diags[0].message.contains("zero-width"));
    }
}
