//! Structural pass: orphan places and trivially degenerate activities.
//!
//! Wraps [`SanModel::analyze`] and refines its conservative warnings
//! with gate-declaration knowledge: an arc-isolated place is only a
//! hard error when *nothing* could possibly touch it — no arc, no
//! declared gate, and no undeclared gate left to give it the benefit of
//! the doubt.

use ahs_san::SanModel;

use crate::diag::{Diagnostic, Severity};
use crate::LintConfig;

/// Pass identifier.
pub const NAME: &str = "structure";

pub(crate) fn run(model: &SanModel, _cfg: &LintConfig) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let report = model.analyze();

    // Are there gates whose access set is unknown? If yes, an
    // arc-isolated place might still be read or written by one of them.
    let any_undeclared_gate = model
        .input_gates()
        .iter()
        .any(|g| g.declared_touches().is_none())
        || model
            .output_gates()
            .iter()
            .any(|g| g.declared_touches().is_none());

    for name in &report.arc_isolated_places {
        let declared_touched = model.input_gates().iter().any(|g| {
            g.declared_touches()
                .is_some_and(|t| t.iter().any(|p| model.place_name(*p) == name))
        }) || model.output_gates().iter().any(|g| {
            g.declared_touches()
                .is_some_and(|t| t.iter().any(|p| model.place_name(*p) == name))
        });
        if declared_touched {
            // A declared gate owns the place; the gate-purity pass
            // validates the declaration, nothing to report here.
            continue;
        }
        if any_undeclared_gate {
            out.push(Diagnostic::new(
                NAME,
                Severity::Warning,
                name.clone(),
                "place is not connected to any arc; an undeclared gate may still \
                 use it — declare gate accesses to let the linter verify",
            ));
        } else {
            out.push(Diagnostic::new(
                NAME,
                Severity::Error,
                name.clone(),
                "orphan place: no arc or gate can ever read or write it",
            ));
        }
    }

    for name in &report.always_enabled_activities {
        out.push(Diagnostic::new(
            NAME,
            Severity::Warning,
            name.clone(),
            "activity has no input arcs or input gates, so it can never be disabled",
        ));
    }
    for name in &report.arc_silent_activities {
        out.push(Diagnostic::new(
            NAME,
            Severity::Warning,
            name.clone(),
            "firing this activity changes no place through arcs and it has no gates",
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ahs_san::{Delay, SanBuilder};

    #[test]
    fn orphan_place_is_an_error_without_gates() {
        let mut b = SanBuilder::new("orphan");
        let p = b.place_with_tokens("p", 1).unwrap();
        b.place("floating").unwrap();
        b.timed_activity("t", Delay::exponential(1.0))
            .unwrap()
            .input_place(p)
            .output_place(p)
            .build()
            .unwrap();
        let model = b.build().unwrap();
        let diags = run(&model, &LintConfig::default());
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].severity, Severity::Error);
        assert_eq!(diags[0].subject, "floating");
    }

    #[test]
    fn undeclared_gate_downgrades_orphan_to_warning() {
        let mut b = SanBuilder::new("maybe");
        let p = b.place_with_tokens("p", 1).unwrap();
        let shadow = b.place("shadow").unwrap();
        // Undeclared gate that does in fact use the "isolated" place.
        let g = b.input_gate(
            "g",
            move |m| !m.is_marked(shadow),
            move |m| {
                m.add_tokens(shadow, 1);
            },
        );
        b.timed_activity("t", Delay::exponential(1.0))
            .unwrap()
            .input_place(p)
            .input_gate(g)
            .output_place(p)
            .build()
            .unwrap();
        let model = b.build().unwrap();
        let diags = run(&model, &LintConfig::default());
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].severity, Severity::Warning);
    }

    #[test]
    fn declared_gate_silences_isolated_place() {
        let mut b = SanBuilder::new("declared");
        let p = b.place_with_tokens("p", 1).unwrap();
        let counter = b.place("counter").unwrap();
        let g = b.output_gate_touching("bump", [counter], move |m| {
            m.add_tokens(counter, 1);
        });
        b.timed_activity("t", Delay::exponential(1.0))
            .unwrap()
            .input_place(p)
            .output_place(p)
            .output_gate(g)
            .build()
            .unwrap();
        let model = b.build().unwrap();
        assert!(run(&model, &LintConfig::default()).is_empty());
    }

    #[test]
    fn always_enabled_activity_flagged() {
        let mut b = SanBuilder::new("src");
        let q = b.place("q").unwrap();
        b.timed_activity("spring", Delay::exponential(1.0))
            .unwrap()
            .output_place(q)
            .build()
            .unwrap();
        let model = b.build().unwrap();
        let diags = run(&model, &LintConfig::default());
        assert!(diags
            .iter()
            .any(|d| d.subject == "spring" && d.severity == Severity::Warning));
    }
}
