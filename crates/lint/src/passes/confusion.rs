//! Instantaneous-activity confusion pass.
//!
//! Two instantaneous activities at the same priority that are enabled
//! together form a *confusion* when their effects do not commute: both
//! firing orders are possible, the engine picks one by weight, and the
//! resulting markings differ. That makes the weighted tie-break a
//! semantic decision rather than a harmless scheduling detail — usually
//! an unintended race between gate marking functions. Pairs where one
//! firing disables the other (a plain conflict) are *not* flagged:
//! weighted conflict resolution is the documented SAN semantics for
//! choice.
//!
//! The pass examines every explored unstable marking (up to the sample
//! cap) and reports each offending activity pair once.

use std::collections::HashSet;

use ahs_san::SanModel;

use crate::diag::{Diagnostic, Severity};
use crate::reach::ReachSet;
use crate::LintConfig;

/// Pass identifier.
pub const NAME: &str = "confusion";

pub(crate) fn run(model: &SanModel, reach: &ReachSet, cfg: &LintConfig) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let mut flagged: HashSet<(usize, usize)> = HashSet::new();
    let mut sampled = 0usize;

    for m in reach.markings() {
        if model.is_stable(m) {
            continue;
        }
        if sampled >= cfg.max_samples {
            break;
        }
        sampled += 1;
        let enabled = model.enabled_instantaneous(m);
        for (i, &a) in enabled.iter().enumerate() {
            for &b in &enabled[i + 1..] {
                let key = (a.index().min(b.index()), a.index().max(b.index()));
                if flagged.contains(&key) {
                    continue;
                }
                'cases: for ca in 0..model.activity(a).cases().len() {
                    for cb in 0..model.activity(b).cases().len() {
                        // Order a then b.
                        let mut ab = m.clone();
                        model.fire(a, ca, &mut ab);
                        if !model.is_enabled(b, &ab) {
                            continue; // conflict, not confusion
                        }
                        model.fire(b, cb, &mut ab);
                        // Order b then a.
                        let mut ba = m.clone();
                        model.fire(b, cb, &mut ba);
                        if !model.is_enabled(a, &ba) {
                            continue;
                        }
                        model.fire(a, ca, &mut ba);
                        if ab != ba {
                            flagged.insert(key);
                            out.push(Diagnostic::new(
                                NAME,
                                Severity::Warning,
                                format!(
                                    "{} / {}",
                                    model.activity(a).name(),
                                    model.activity(b).name()
                                ),
                                format!(
                                    "equal-priority instantaneous activities are enabled \
                                     together in a reachable marking and their effects do \
                                     not commute (case {ca} vs case {cb}); the weighted \
                                     tie-break silently decides the outcome"
                                ),
                            ));
                            break 'cases;
                        }
                    }
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ahs_san::{Delay, SanBuilder};

    fn lint(model: &SanModel) -> Vec<Diagnostic> {
        let cfg = LintConfig::default();
        let reach = ReachSet::explore(model, cfg.max_states);
        run(model, &reach, &cfg)
    }

    #[test]
    fn conflicting_pair_is_not_flagged() {
        // Both instantaneous activities consume the same `trigger`
        // token: whichever fires first disables the other. That is a
        // weighted conflict — documented SAN semantics, not confusion.
        let mut b = SanBuilder::new("conflict");
        let src = b.place_with_tokens("src", 1).unwrap();
        let trigger = b.place("trigger").unwrap();
        let reg = b.place("reg").unwrap();
        b.timed_activity("start", Delay::exponential(1.0))
            .unwrap()
            .input_place(src)
            .output_place(trigger)
            .build()
            .unwrap();
        let set_one = b.output_gate("set_one", move |m| m.set_tokens(reg, 1));
        let double = b.output_gate("double", move |m| {
            let v = m.tokens(reg);
            m.set_tokens(reg, v * 2);
        });
        b.instant_activity("setter", 0, 1.0)
            .unwrap()
            .input_place(trigger)
            .output_gate(set_one)
            .build()
            .unwrap();
        b.instant_activity("doubler", 0, 1.0)
            .unwrap()
            .input_place(trigger)
            .output_gate(double)
            .build()
            .unwrap();
        assert!(lint(&b.build().unwrap()).is_empty());
    }

    #[test]
    fn overlapping_enabling_without_conflict_is_flagged() {
        // `start` hands each activity its own ticket, so neither firing
        // disables the other; both write `reg` through gates in a
        // non-commuting way (set-to-1 vs double).
        let mut b = SanBuilder::new("confused");
        let src = b.place_with_tokens("src", 1).unwrap();
        let ta = b.place("ticket_a").unwrap();
        let tb = b.place("ticket_b").unwrap();
        let reg = b.place("reg").unwrap();
        b.timed_activity("start", Delay::exponential(1.0))
            .unwrap()
            .input_place(src)
            .output_place(ta)
            .output_place(tb)
            .build()
            .unwrap();
        let set_one = b.output_gate("set_one", move |m| m.set_tokens(reg, 1));
        let double = b.output_gate("double", move |m| {
            let v = m.tokens(reg);
            m.set_tokens(reg, v * 2);
        });
        b.instant_activity("setter", 0, 1.0)
            .unwrap()
            .input_place(ta)
            .output_gate(set_one)
            .build()
            .unwrap();
        b.instant_activity("doubler", 0, 1.0)
            .unwrap()
            .input_place(tb)
            .output_gate(double)
            .build()
            .unwrap();
        let diags = lint(&b.build().unwrap());
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].severity, Severity::Warning);
        assert!(diags[0].subject.contains("setter"));
        assert!(diags[0].subject.contains("doubler"));
    }

    #[test]
    fn commuting_independent_activities_pass() {
        let mut b = SanBuilder::new("independent");
        let src = b.place_with_tokens("src", 1).unwrap();
        let ta = b.place("ta").unwrap();
        let tb = b.place("tb").unwrap();
        let xa = b.place("xa").unwrap();
        let xb = b.place("xb").unwrap();
        b.timed_activity("start", Delay::exponential(1.0))
            .unwrap()
            .input_place(src)
            .output_place(ta)
            .output_place(tb)
            .build()
            .unwrap();
        b.instant_activity("ia", 0, 1.0)
            .unwrap()
            .input_place(ta)
            .output_place(xa)
            .build()
            .unwrap();
        b.instant_activity("ib", 0, 1.0)
            .unwrap()
            .input_place(tb)
            .output_place(xb)
            .build()
            .unwrap();
        assert!(lint(&b.build().unwrap()).is_empty());
    }

    #[test]
    fn different_priorities_cannot_confuse() {
        let mut b = SanBuilder::new("prio");
        let src = b.place_with_tokens("src", 1).unwrap();
        let ta = b.place("ta").unwrap();
        let tb = b.place("tb").unwrap();
        let reg = b.place("reg").unwrap();
        b.timed_activity("start", Delay::exponential(1.0))
            .unwrap()
            .input_place(src)
            .output_place(ta)
            .output_place(tb)
            .build()
            .unwrap();
        let set_one = b.output_gate("set_one", move |m| m.set_tokens(reg, 1));
        let double = b.output_gate("double", move |m| {
            let v = m.tokens(reg);
            m.set_tokens(reg, v * 2);
        });
        // Same non-commuting effects, but distinct priorities: the order
        // is deterministic, so there is no confusion.
        b.instant_activity("setter", 2, 1.0)
            .unwrap()
            .input_place(ta)
            .output_gate(set_one)
            .build()
            .unwrap();
        b.instant_activity("doubler", 1, 1.0)
            .unwrap()
            .input_place(tb)
            .output_gate(double)
            .build()
            .unwrap();
        assert!(lint(&b.build().unwrap()).is_empty());
    }
}
