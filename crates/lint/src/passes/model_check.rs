//! Deep model-check pass: lifts `ahs-check` results into diagnostics.
//!
//! This pass only runs from [`Linter::lint_deep`](crate::Linter::lint_deep):
//! the exhaustive checker explores *every* reachable marking, so its
//! findings are proofs rather than bounded samples. Property violations
//! become errors carrying their minimal counterexample trace (and
//! whether the DES executor replayed it); a truncated exhaustive
//! exploration becomes a warning, since nothing was proved.
//!
//! Dead-activity violations are deliberately *not* re-reported here —
//! the bounded `dead-activity` pass already flagged a superset, and
//! [`dead::reconcile`](super::dead::reconcile) upgrades or retracts
//! those findings against the exact set.

use ahs_check::{CheckOutcome, PropertyKind};

use crate::diag::{Diagnostic, Severity};

/// Pass identifier.
pub const NAME: &str = "model-check";

pub(crate) fn run(outcome: &CheckOutcome) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    if !outcome.graph.complete() {
        out.push(Diagnostic::new(
            NAME,
            Severity::Warning,
            outcome.model.clone(),
            format!(
                "exhaustive exploration truncated at {} states; deep properties \
                 were checked but not proved (raise the deep state budget)",
                outcome.graph.len()
            ),
        ));
    }
    for v in &outcome.violations {
        if v.property == PropertyKind::DeadActivity {
            continue;
        }
        let mut message = format!("[{}] {}", v.property.name(), v.message);
        if !v.trace.is_empty() {
            let path: Vec<String> = v
                .trace
                .iter()
                .map(|s| {
                    if s.case == 0 {
                        s.activity_name.clone()
                    } else {
                        format!("{}#{}", s.activity_name, s.case)
                    }
                })
                .collect();
            message.push_str(&format!("; trace: {}", path.join(" -> ")));
        }
        match v.replay_confirmed {
            Some(true) => message.push_str(" (replay confirmed by the DES executor)"),
            Some(false) => message.push_str(" (replay DIVERGED in the DES executor)"),
            None => {}
        }
        out.push(Diagnostic::new(
            NAME,
            Severity::Error,
            v.subject.clone(),
            message,
        ));
    }
    out
}
