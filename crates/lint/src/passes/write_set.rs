//! Write-set soundness audit for the activity dependency graph.
//!
//! The simulators' incremental enablement cache (see
//! `docs/performance.md`) trusts the per-activity read/write sets that
//! [`ahs_san::DependencyGraph`] derives from declared structure: after
//! an activity fires, only activities whose read-set intersects the
//! firer's write-set are re-evaluated. A gate that *lies* about its
//! `touches` makes that cache silently wrong — stale enabledness, not a
//! crash — so this pass verifies the derived sets against instrumented
//! executions:
//!
//! * **enablement reads** — `is_enabled` is traced in every sampled
//!   reachable marking; a read outside the activity's declared read-set
//!   is an error (enabledness could change without invalidation);
//! * **firing writes** — every case of every fireable activity is fired
//!   against a shadow marking; a write outside the declared write-set
//!   is an error (downstream activities would never be re-checked).
//!
//! Activities attached to a gate with *no* `touches` declaration are
//! skipped: their sets are knowingly incomplete, the graph reports
//! itself unsound, and the simulators fall back to full rescans. Each
//! such gate gets an informational note, because the fallback is purely
//! a throughput cost.

use std::collections::BTreeSet;

use ahs_san::{trace, ActivityId, Marking, PlaceId, SanModel};

use crate::diag::{Diagnostic, Severity};
use crate::reach::ReachSet;
use crate::LintConfig;

/// Pass identifier.
pub const NAME: &str = "write-set";

pub(crate) fn run(model: &SanModel, reach: &ReachSet, cfg: &LintConfig) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let graph = model.dependency_graph();

    if !graph.is_sound() {
        for g in model.input_gates() {
            if g.declared_touches().is_none() {
                out.push(undeclared_note(g.name()));
            }
        }
        for g in model.output_gates() {
            if g.declared_touches().is_none() {
                out.push(undeclared_note(g.name()));
            }
        }
    }

    let samples: Vec<&Marking> = std::iter::once(model.initial_marking())
        .chain(reach.markings().iter())
        .take(cfg.max_samples.max(1))
        .collect();

    let all: Vec<ActivityId> = model
        .timed_activities()
        .iter()
        .chain(model.instantaneous_activities())
        .copied()
        .collect();

    // Accumulated violations, reported once per activity.
    let n = model.activities().len();
    let mut read_violations = vec![BTreeSet::<PlaceId>::new(); n];
    let mut write_violations = vec![BTreeSet::<PlaceId>::new(); n];

    for m in &samples {
        let fireable = if model.is_stable(m) {
            model.enabled_timed(m)
        } else {
            model.enabled_instantaneous(m)
        };
        for &a in &all {
            if !sets_complete(model, a) {
                continue;
            }
            let (_, t) = trace::record(|| model.is_enabled(a, m));
            let reads = graph.read_set(a);
            read_violations[a.index()].extend(t.reads().filter(|p| !reads.contains(p)));
        }
        for &a in &fireable {
            if !sets_complete(model, a) {
                continue;
            }
            let writes = graph.write_set(a);
            for case in 0..model.activity(a).cases().len() {
                let mut shadow = (*m).clone();
                let (_, t) = trace::record(|| model.fire(a, case, &mut shadow));
                write_violations[a.index()].extend(t.writes().filter(|p| !writes.contains(p)));
            }
        }
    }

    for &a in &all {
        let act = model.activity(a);
        let bad = &read_violations[a.index()];
        if !bad.is_empty() {
            out.push(Diagnostic::new(
                NAME,
                Severity::Error,
                act.name().to_owned(),
                format!(
                    "enabling condition reads {} outside the declared read-set; \
                     incremental enablement would miss changes to them",
                    place_list(model, bad)
                ),
            ));
        }
        let bad = &write_violations[a.index()];
        if !bad.is_empty() {
            out.push(Diagnostic::new(
                NAME,
                Severity::Error,
                act.name().to_owned(),
                format!(
                    "firing writes {} outside the declared write-set; \
                     activities reading them would not be re-evaluated",
                    place_list(model, bad)
                ),
            ));
        }
    }
    out
}

/// Whether every gate attached to `a` carries a `touches` declaration,
/// i.e. the derived read/write sets are complete for this activity.
fn sets_complete(model: &SanModel, a: ActivityId) -> bool {
    let act = model.activity(a);
    act.input_gates()
        .iter()
        .all(|g| model.input_gates()[g.index()].declared_touches().is_some())
        && act.cases().iter().all(|case| {
            case.output_gates()
                .iter()
                .all(|g| model.output_gates()[g.index()].declared_touches().is_some())
        })
}

fn undeclared_note(gate: &str) -> Diagnostic {
    Diagnostic::new(
        NAME,
        Severity::Info,
        gate.to_owned(),
        "declares no `touches`: the dependency graph is unsound and the \
         simulators fall back to full enablement rescans (correct but slower)",
    )
}

/// `` `a`, `b`, `c` `` rendering of a place set.
fn place_list(model: &SanModel, places: &BTreeSet<PlaceId>) -> String {
    places
        .iter()
        .map(|&p| format!("`{}`", model.place_name(p)))
        .collect::<Vec<_>>()
        .join(", ")
}

#[cfg(test)]
mod tests {
    use super::*;
    use ahs_san::{Delay, SanBuilder};

    fn lint(model: &SanModel) -> Vec<Diagnostic> {
        let cfg = LintConfig::default();
        let reach = ReachSet::explore(model, cfg.max_states);
        run(model, &reach, &cfg)
    }

    #[test]
    fn honest_declarations_pass() {
        let mut b = SanBuilder::new("honest");
        let p = b.place_with_tokens("p", 1).unwrap();
        let flag = b.place_with_tokens("flag", 1).unwrap();
        let counter = b.place("counter").unwrap();
        let guard = b.predicate_gate_touching("guard", [flag], move |m| m.is_marked(flag));
        let bump = b.output_gate_touching("bump", [counter], move |m| {
            m.add_tokens(counter, 1);
        });
        b.timed_activity("t", Delay::exponential(1.0))
            .unwrap()
            .input_place(p)
            .input_gate(guard)
            .output_place(p)
            .output_gate(bump)
            .build()
            .unwrap();
        let diags = lint(&b.build().unwrap());
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn undeclared_enablement_read_is_an_error() {
        let mut b = SanBuilder::new("lying_reader");
        let p = b.place_with_tokens("p", 1).unwrap();
        let a = b.place_with_tokens("a", 1).unwrap();
        let hidden = b.place_with_tokens("hidden", 1).unwrap();
        // Declares only `a` but the predicate also consults `hidden`.
        let g =
            b.predicate_gate_touching("lying", [a], move |m| m.is_marked(a) && m.is_marked(hidden));
        b.timed_activity("t", Delay::exponential(1.0))
            .unwrap()
            .input_place(p)
            .input_gate(g)
            .output_place(p)
            .build()
            .unwrap();
        let diags = lint(&b.build().unwrap());
        let err = diags
            .iter()
            .find(|d| d.severity == Severity::Error)
            .expect("expected a read-set error");
        assert_eq!(err.subject, "t");
        assert!(err.message.contains("hidden"), "{err:?}");
        assert!(err.message.contains("read-set"));
    }

    #[test]
    fn undeclared_firing_write_is_an_error() {
        let mut b = SanBuilder::new("lying_writer");
        let p = b.place_with_tokens("p", 1).unwrap();
        let a = b.place("a").unwrap();
        let hidden = b.place("hidden").unwrap();
        let g = b.output_gate_touching("sneaky", [a], move |m| {
            m.add_tokens(a, 1);
            m.add_tokens(hidden, 1);
        });
        b.timed_activity("t", Delay::exponential(1.0))
            .unwrap()
            .input_place(p)
            .output_place(p)
            .output_gate(g)
            .build()
            .unwrap();
        let diags = lint(&b.build().unwrap());
        let err = diags
            .iter()
            .find(|d| d.severity == Severity::Error)
            .expect("expected a write-set error");
        assert_eq!(err.subject, "t");
        assert!(err.message.contains("hidden"), "{err:?}");
        assert!(err.message.contains("write-set"));
    }

    #[test]
    fn dishonest_split_declaration_is_an_error() {
        let mut b = SanBuilder::new("lying_split");
        let p = b.place_with_tokens("p", 1).unwrap();
        let watched = b.place_with_tokens("watched", 1).unwrap();
        let ledger = b.place_with_tokens("ledger", 1).unwrap();
        // Declares `ledger` as write-only, but the predicate reads it:
        // enablement could change without the cache noticing.
        let g = b.input_gate_touching_split(
            "split",
            [watched],
            [ledger],
            move |m| m.is_marked(watched) && m.is_marked(ledger),
            move |m| m.add_tokens(ledger, 1),
        );
        b.timed_activity("t", Delay::exponential(1.0))
            .unwrap()
            .input_place(p)
            .input_gate(g)
            .output_place(p)
            .build()
            .unwrap();
        let diags = lint(&b.build().unwrap());
        let err = diags
            .iter()
            .find(|d| d.severity == Severity::Error)
            .expect("expected a read-set error");
        assert_eq!(err.subject, "t");
        assert!(err.message.contains("ledger"), "{err:?}");
        assert!(err.message.contains("read-set"));
    }

    #[test]
    fn undeclared_gate_gets_a_note_not_an_error() {
        let mut b = SanBuilder::new("opaque");
        let p = b.place_with_tokens("p", 1).unwrap();
        let g = b.predicate_gate("no_touches", |_| true);
        b.timed_activity("t", Delay::exponential(1.0))
            .unwrap()
            .input_place(p)
            .input_gate(g)
            .output_place(p)
            .build()
            .unwrap();
        let diags = lint(&b.build().unwrap());
        assert!(diags
            .iter()
            .any(|d| d.severity == Severity::Info && d.subject == "no_touches"));
        assert!(diags.iter().all(|d| d.severity != Severity::Error));
    }
}
