//! Case-probability pass.
//!
//! Constant case distributions are checked exactly: each probability
//! must lie in `[0, 1]` and an all-constant distribution must sum to 1
//! within the configured tolerance. Marking-dependent distributions
//! cannot be checked statically, so they are *sampled*: the pass
//! evaluates the full distribution in every reachable marking in which
//! the activity is enabled (up to a per-activity sample cap) and reports
//! the first marking where it is invalid — the exact failure that
//! otherwise surfaces mid-simulation as
//! [`SanError::InvalidCaseDistribution`](ahs_san::SanError).

use ahs_san::{CaseProb, SanModel};

use crate::diag::{Diagnostic, Severity};
use crate::reach::ReachSet;
use crate::LintConfig;

/// Pass identifier.
pub const NAME: &str = "case-probability";

pub(crate) fn run(model: &SanModel, reach: &ReachSet, cfg: &LintConfig) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for (idx, act) in model.activities().iter().enumerate() {
        let id = model
            .find_activity(act.name())
            .unwrap_or_else(|| panic!("activity {idx} must resolve by name"));

        let mut const_sum = Some(0.0_f64);
        let mut has_md = false;
        for (c, case) in act.cases().iter().enumerate() {
            match case.probability_spec() {
                CaseProb::Const(p) => {
                    if !p.is_finite() || !(0.0..=1.0).contains(p) {
                        out.push(Diagnostic::new(
                            NAME,
                            Severity::Error,
                            act.name().to_owned(),
                            format!("case {c}: constant probability {p} outside [0, 1]"),
                        ));
                    }
                    const_sum = const_sum.map(|s| s + p);
                }
                CaseProb::MarkingDependent(_) => {
                    has_md = true;
                    const_sum = None;
                }
            }
        }
        if let Some(sum) = const_sum {
            if (sum - 1.0).abs() > cfg.epsilon {
                out.push(Diagnostic::new(
                    NAME,
                    Severity::Error,
                    act.name().to_owned(),
                    format!("constant case probabilities sum to {sum}, expected 1"),
                ));
            }
        }

        if !has_md {
            continue;
        }
        // Sample the marking-dependent distribution over reachable
        // markings in which the activity is enabled.
        let mut sampled = 0usize;
        for m in reach.markings() {
            if sampled >= cfg.max_samples {
                break;
            }
            if !model.is_enabled(id, m) {
                continue;
            }
            sampled += 1;
            if let Err(e) = model.case_probabilities(id, m) {
                out.push(Diagnostic::new(
                    NAME,
                    Severity::Error,
                    act.name().to_owned(),
                    format!(
                        "marking-dependent case distribution invalid in a reachable \
                         marking (sample {sampled}): {e}"
                    ),
                ));
                break;
            }
        }
        if sampled == 0 && !reach.is_empty() {
            out.push(Diagnostic::new(
                NAME,
                Severity::Info,
                act.name().to_owned(),
                "marking-dependent case distribution could not be sampled: the \
                 activity was never enabled in the explored markings",
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ahs_san::{Delay, SanBuilder};

    fn lint(model: &SanModel) -> Vec<Diagnostic> {
        let cfg = LintConfig::default();
        let reach = ReachSet::explore(model, cfg.max_states);
        run(model, &reach, &cfg)
    }

    #[test]
    fn valid_distributions_pass() {
        let mut b = SanBuilder::new("ok");
        let p = b.place_with_tokens("p", 1).unwrap();
        let q = b.place("q").unwrap();
        b.timed_activity("t", Delay::exponential(1.0))
            .unwrap()
            .input_place(p)
            .case(0.7)
            .output_place(q)
            .case(0.3)
            .output_place(q)
            .build()
            .unwrap();
        assert!(lint(&b.build().unwrap()).is_empty());
    }

    #[test]
    fn bad_marking_dependent_sum_is_reported() {
        let mut b = SanBuilder::new("bad_md");
        let p = b.place_with_tokens("p", 1).unwrap();
        let q = b.place("q").unwrap();
        // 0.6 + 0.3 = 0.9: invalid in every marking, but the builder
        // cannot see through the closures.
        b.timed_activity("t", Delay::exponential(1.0))
            .unwrap()
            .input_place(p)
            .case_fn(|_| 0.6)
            .output_place(q)
            .case_fn(|_| 0.3)
            .output_place(q)
            .build()
            .unwrap();
        let diags = lint(&b.build().unwrap());
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].severity, Severity::Error);
        assert_eq!(diags[0].pass, NAME);
        assert!(diags[0].message.contains("invalid"));
    }

    #[test]
    fn marking_dependence_only_breaks_in_some_markings() {
        let mut b = SanBuilder::new("partial");
        let p = b.place_with_tokens("p", 2).unwrap();
        let q = b.place("q").unwrap();
        // Valid while p holds 2 tokens, invalid once it holds 1.
        b.timed_activity("t", Delay::exponential(1.0))
            .unwrap()
            .input_place(p)
            .case_fn(move |m| if m.tokens(p) >= 2 { 1.0 } else { 0.4 })
            .output_place(q)
            .build()
            .unwrap();
        let diags = lint(&b.build().unwrap());
        assert!(diags.iter().any(|d| d.severity == Severity::Error));
    }

    #[test]
    fn never_enabled_md_activity_gets_an_info() {
        let mut b = SanBuilder::new("unsampled");
        let p = b.place_with_tokens("p", 1).unwrap();
        let blocked = b.place("blocked").unwrap();
        let q = b.place("q").unwrap();
        b.timed_activity("live", Delay::exponential(1.0))
            .unwrap()
            .input_place(p)
            .output_place(p)
            .build()
            .unwrap();
        b.timed_activity("t", Delay::exponential(1.0))
            .unwrap()
            .input_place(blocked)
            .case_fn(|_| 1.0)
            .output_place(q)
            .build()
            .unwrap();
        let diags = lint(&b.build().unwrap());
        assert!(diags
            .iter()
            .any(|d| d.subject == "t" && d.severity == Severity::Info));
    }
}
