//! Deadlock / unintended-absorbing-state pass.
//!
//! A stable marking with no enabled timed activity is *absorbing*: the
//! model can never leave it. Some absorbing markings are intended — the
//! paper's models funnel catastrophic failures into `v_KO` / `KO_total`
//! sink states by design (the unsafety measure is exactly the
//! probability mass absorbed there). Intended sinks are declared
//! through the allowlist ([`LintConfig::absorbing_allowlist`]): an
//! absorbing marking is legal iff it marks at least one place whose
//! name contains an allowlisted pattern. Every other absorbing marking
//! is a deadlock — typically a token leaked or a predicate that traps.
//!
//! Detection is marking-local (the activity enabling test), so a
//! truncated exploration can miss absorbing markings but never invents
//! one: findings stay errors regardless of budget.

use ahs_san::{Marking, SanModel};

use crate::diag::{Diagnostic, Severity};
use crate::reach::ReachSet;
use crate::LintConfig;

/// Pass identifier.
pub const NAME: &str = "absorbing";

/// Cap on the number of distinct absorbing markings reported per model,
/// so one systemic leak does not flood the report.
const MAX_REPORTS: usize = 5;

pub(crate) fn run(model: &SanModel, reach: &ReachSet, cfg: &LintConfig) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let mut reported = 0usize;
    let mut suppressed = 0usize;
    for m in reach.markings() {
        if !model.is_stable(m) || !model.enabled_timed(m).is_empty() {
            continue;
        }
        if is_allowlisted(model, m, cfg) {
            continue;
        }
        if reported == MAX_REPORTS {
            suppressed += 1;
            continue;
        }
        reported += 1;
        out.push(Diagnostic::new(
            NAME,
            Severity::Error,
            describe_marking(model, m),
            "deadlock: reachable absorbing marking not covered by the \
             allowlist (declare intended sinks with --allow)",
        ));
    }
    if suppressed > 0 {
        out.push(Diagnostic::new(
            NAME,
            Severity::Info,
            model.name().to_owned(),
            format!("{suppressed} further unintended absorbing marking(s) suppressed"),
        ));
    }
    out
}

/// Whether the marking marks a place matching the allowlist.
fn is_allowlisted(model: &SanModel, m: &Marking, cfg: &LintConfig) -> bool {
    cfg.absorbing_allowlist.iter().any(|pattern| {
        model
            .place_ids()
            .any(|p| m.is_marked(p) && model.place_name(p).contains(pattern.as_str()))
    })
}

/// A short human-readable summary of a marking: the marked places.
fn describe_marking(model: &SanModel, m: &Marking) -> String {
    let mut names: Vec<&str> = model
        .place_ids()
        .filter(|&p| m.is_marked(p))
        .map(|p| model.place_name(p))
        .collect();
    if names.is_empty() {
        return "<empty marking>".to_owned();
    }
    let extra = names.len().saturating_sub(6);
    names.truncate(6);
    let mut s = format!("{{{}}}", names.join(", "));
    if extra > 0 {
        s.push_str(&format!(" (+{extra} more)"));
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use ahs_san::{Delay, SanBuilder};

    fn lint(model: &SanModel, allow: &[&str]) -> Vec<Diagnostic> {
        let cfg = LintConfig {
            absorbing_allowlist: allow.iter().map(|s| (*s).to_owned()).collect(),
            ..LintConfig::default()
        };
        let reach = ReachSet::explore(model, cfg.max_states);
        run(model, &reach, &cfg)
    }

    /// p --die--> grave, with no way out of `grave`.
    fn terminal_model() -> SanModel {
        let mut b = SanBuilder::new("terminal");
        let p = b.place_with_tokens("p", 1).unwrap();
        let grave = b.place("grave").unwrap();
        b.timed_activity("die", Delay::exponential(1.0))
            .unwrap()
            .input_place(p)
            .output_place(grave)
            .build()
            .unwrap();
        b.build().unwrap()
    }

    #[test]
    fn unintended_deadlock_is_an_error() {
        let diags = lint(&terminal_model(), &[]);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].severity, Severity::Error);
        assert!(diags[0].subject.contains("grave"));
    }

    #[test]
    fn allowlisted_sink_is_legal() {
        assert!(lint(&terminal_model(), &["grave"]).is_empty());
        // Substring match, as with `v_KO` covering `vehicle[3].v_KO`.
        assert!(lint(&terminal_model(), &["rav"]).is_empty());
    }

    #[test]
    fn cyclic_model_has_no_absorbing_markings() {
        let mut b = SanBuilder::new("cycle");
        let p = b.place_with_tokens("p", 1).unwrap();
        let q = b.place("q").unwrap();
        b.timed_activity("pq", Delay::exponential(1.0))
            .unwrap()
            .input_place(p)
            .output_place(q)
            .build()
            .unwrap();
        b.timed_activity("qp", Delay::exponential(1.0))
            .unwrap()
            .input_place(q)
            .output_place(p)
            .build()
            .unwrap();
        assert!(lint(&b.build().unwrap(), &[]).is_empty());
    }

    #[test]
    fn flood_of_deadlocks_is_capped() {
        // One token distributed into any of 12 distinct graves.
        let mut b = SanBuilder::new("flood");
        let p = b.place_with_tokens("p", 1).unwrap();
        for i in 0..12 {
            let grave = b.place(&format!("grave{i}")).unwrap();
            b.timed_activity(&format!("die{i}"), Delay::exponential(1.0))
                .unwrap()
                .input_place(p)
                .output_place(grave)
                .build()
                .unwrap();
        }
        let diags = lint(&b.build().unwrap(), &[]);
        let errors = diags
            .iter()
            .filter(|d| d.severity == Severity::Error)
            .count();
        assert_eq!(errors, MAX_REPORTS);
        assert!(diags
            .iter()
            .any(|d| d.severity == Severity::Info && d.message.contains("suppressed")));
    }
}
