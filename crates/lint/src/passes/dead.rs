//! Dead-activity pass.
//!
//! An activity is *live* if some explored marking lets it actually
//! fire: for a timed activity that means being enabled in a stable
//! marking (time never advances in unstable ones), for an instantaneous
//! activity it means being in the top-priority enabled set (an enabled
//! activity forever shadowed by a higher priority never fires either).
//! Activities that are never live are modelling dead weight — usually a
//! mis-wired arc or an enabling predicate that can never hold. When
//! exploration was truncated the finding is downgraded to a warning,
//! since liveness might hide beyond the budget.

use std::collections::HashSet;

use ahs_san::SanModel;

use crate::diag::{Diagnostic, Severity};
use crate::reach::ReachSet;
use crate::LintConfig;

/// Pass identifier.
pub const NAME: &str = "dead-activity";

pub(crate) fn run(model: &SanModel, reach: &ReachSet, _cfg: &LintConfig) -> Vec<Diagnostic> {
    let mut live: HashSet<usize> = HashSet::new();
    for m in reach.markings() {
        if model.is_stable(m) {
            for a in model.enabled_timed(m) {
                live.insert(a.index());
            }
        } else {
            for a in model.enabled_instantaneous(m) {
                live.insert(a.index());
            }
        }
        if live.len() == model.num_activities() {
            break;
        }
    }

    let severity = if reach.complete() {
        Severity::Error
    } else {
        Severity::Warning
    };
    model
        .activities()
        .iter()
        .enumerate()
        .filter(|(i, _)| !live.contains(i))
        .map(|(_, a)| {
            let detail = if reach.complete() {
                "activity can never fire in any reachable marking"
            } else {
                "activity never fired within the explored state budget \
                 (exploration truncated; raise --max-states to confirm)"
            };
            Diagnostic::new(NAME, severity, a.name().to_owned(), detail)
        })
        .collect()
}

/// Reconciles this pass's bounded findings with the exhaustive
/// checker's *exact* dead set (deep lint only, complete graphs only).
///
/// Bounded reachability explores a subset of the true graph, so its
/// dead set is a superset of the exact one: every exactly-dead activity
/// was already flagged here, and some flagged activities may in fact be
/// live beyond the budget. Findings confirmed by the checker are
/// upgraded to errors with proof language; refuted ones are retracted
/// to an info note explaining the budget artifact. Diagnostics from
/// other passes are passed through untouched.
pub(crate) fn reconcile(diags: Vec<Diagnostic>, exact_dead: &[String]) -> Vec<Diagnostic> {
    diags
        .into_iter()
        .map(|d| {
            if d.pass != NAME {
                return d;
            }
            if exact_dead.contains(&d.subject) {
                Diagnostic::new(
                    NAME,
                    Severity::Error,
                    d.subject,
                    "activity can never fire in any reachable marking (proven \
                     by exhaustive model check)",
                )
            } else {
                Diagnostic::new(
                    NAME,
                    Severity::Info,
                    d.subject,
                    "bounded exploration flagged this activity as dead, but the \
                     exhaustive model check proves it live — the lint state \
                     budget truncated too early (raise --max-states)",
                )
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ahs_san::{Delay, SanBuilder};

    fn lint(model: &SanModel, max_states: usize) -> Vec<Diagnostic> {
        let reach = ReachSet::explore(model, max_states);
        run(model, &reach, &LintConfig::default())
    }

    #[test]
    fn live_activities_pass() {
        let mut b = SanBuilder::new("live");
        let p = b.place_with_tokens("p", 1).unwrap();
        let q = b.place("q").unwrap();
        b.timed_activity("pq", Delay::exponential(1.0))
            .unwrap()
            .input_place(p)
            .output_place(q)
            .build()
            .unwrap();
        b.timed_activity("qp", Delay::exponential(1.0))
            .unwrap()
            .input_place(q)
            .output_place(p)
            .build()
            .unwrap();
        assert!(lint(&b.build().unwrap(), 100).is_empty());
    }

    #[test]
    fn starved_activity_is_dead() {
        let mut b = SanBuilder::new("dead");
        let p = b.place_with_tokens("p", 1).unwrap();
        let never = b.place("never").unwrap();
        let sink = b.place("sink").unwrap();
        b.timed_activity("spin", Delay::exponential(1.0))
            .unwrap()
            .input_place(p)
            .output_place(p)
            .build()
            .unwrap();
        // Requires two tokens in `never`, which no activity produces.
        b.timed_activity("ghost", Delay::exponential(1.0))
            .unwrap()
            .input_arc(never, 2)
            .output_place(sink)
            .build()
            .unwrap();
        let diags = lint(&b.build().unwrap(), 100);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].subject, "ghost");
        assert_eq!(diags[0].severity, Severity::Error);
    }

    #[test]
    fn shadowed_instantaneous_activity_is_dead() {
        let mut b = SanBuilder::new("shadow");
        let src = b.place_with_tokens("src", 1).unwrap();
        let hi = b.place("hi").unwrap();
        let lo = b.place("lo").unwrap();
        // Both need `src`; priority 5 always wins and consumes the token,
        // so the priority-1 activity is enabled initially yet never fires.
        b.instant_activity("winner", 5, 1.0)
            .unwrap()
            .input_place(src)
            .output_place(hi)
            .build()
            .unwrap();
        b.instant_activity("shadowed", 1, 1.0)
            .unwrap()
            .input_place(src)
            .output_place(lo)
            .build()
            .unwrap();
        // Keep the stable end marking non-deadlocked for clarity.
        b.timed_activity("idle", Delay::exponential(1.0))
            .unwrap()
            .input_place(hi)
            .output_place(hi)
            .build()
            .unwrap();
        let diags = lint(&b.build().unwrap(), 100);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].subject, "shadowed");
    }

    #[test]
    fn truncated_exploration_downgrades_to_warning() {
        let mut b = SanBuilder::new("trunc");
        let p = b.place_with_tokens("p", 1).unwrap();
        let counter = b.place("counter").unwrap();
        let late = b.place("late").unwrap();
        b.timed_activity("count", Delay::exponential(1.0))
            .unwrap()
            .input_place(p)
            .output_place(p)
            .output_place(counter)
            .build()
            .unwrap();
        // Fires only once `counter` accumulates 50 tokens — beyond a
        // budget of 10 explored markings.
        b.timed_activity("eventually", Delay::exponential(1.0))
            .unwrap()
            .input_arc(counter, 50)
            .output_place(late)
            .build()
            .unwrap();
        let diags = lint(&b.build().unwrap(), 10);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].subject, "eventually");
        assert_eq!(diags[0].severity, Severity::Warning);
    }
}
