//! The individual lint passes.
//!
//! Every pass has the same shape: it inspects a built [`SanModel`]
//! (plus the shared bounded-reachability sample) and returns zero or
//! more [`Diagnostic`]s. Passes never mutate the model and never panic
//! on well-formed input; defects are reported, not thrown.
//!
//! [`SanModel`]: ahs_san::SanModel
//! [`Diagnostic`]: crate::Diagnostic

pub(crate) mod absorbing;
pub(crate) mod case_prob;
pub(crate) mod confusion;
pub(crate) mod dead;
pub(crate) mod delay_sanity;
pub(crate) mod gate_purity;
pub(crate) mod model_check;
pub(crate) mod structure;
pub(crate) mod write_set;

/// Stable identifiers of every pass, in execution order. These are the
/// `pass` values appearing in reports and are part of the JSON schema.
/// The `model-check` pass only runs in deep mode
/// ([`Linter::lint_deep`](crate::Linter::lint_deep)).
pub const PASS_NAMES: [&str; 9] = [
    structure::NAME,
    case_prob::NAME,
    dead::NAME,
    absorbing::NAME,
    confusion::NAME,
    gate_purity::NAME,
    write_set::NAME,
    delay_sanity::NAME,
    model_check::NAME,
];
