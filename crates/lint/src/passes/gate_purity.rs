//! Gate-purity audit.
//!
//! Gate predicates and marking functions are opaque closures, so the
//! only way to see what they do is to *run* them and watch. This pass
//! executes gates against instrumented shadow copies of sampled
//! reachable markings ([`ahs_san::trace`] records every place accessor
//! call) and checks two contracts:
//!
//! * a gate built with `predicate_gate` claims an identity marking
//!   function — any recorded write is an error;
//! * a gate with a `touches` declaration must stay inside it — reading
//!   or writing an undeclared place is an error (the declaration is
//!   what lets the structural passes reason about gate-managed places).
//!
//! Predicates must be total (`is_enabled` evaluates them in arbitrary
//! markings), so they are traced in every sampled marking. Marking
//! functions only ever run when an attached activity fires and may rely
//! on that precondition — e.g. removing a token the enabling condition
//! guarantees — so they are traced only in sampled markings from which
//! such a firing can actually happen.
//!
//! A predicate that reads nothing in any sampled marking is reported as
//! a note: it is constant, so the gate either never matters or should
//! be an arc.

use std::collections::BTreeSet;

use ahs_san::{trace, Marking, PlaceId, SanModel};

use crate::diag::{Diagnostic, Severity};
use crate::reach::ReachSet;
use crate::LintConfig;

/// Pass identifier.
pub const NAME: &str = "gate-purity";

/// Per-gate observations accumulated over the samples.
#[derive(Default, Clone)]
struct GateTrace {
    predicate_reads: BTreeSet<PlaceId>,
    function_writes: BTreeSet<PlaceId>,
    touched: BTreeSet<PlaceId>,
}

pub(crate) fn run(model: &SanModel, reach: &ReachSet, cfg: &LintConfig) -> Vec<Diagnostic> {
    let samples: Vec<&Marking> = std::iter::once(model.initial_marking())
        .chain(reach.markings().iter())
        .take(cfg.max_samples.max(1))
        .collect();

    let mut ig_traces = vec![GateTrace::default(); model.input_gates().len()];
    let mut og_traces = vec![GateTrace::default(); model.output_gates().len()];

    for m in &samples {
        // Gates whose marking function could run from this marking:
        // those attached to an activity that can fire here.
        let fireable = if model.is_stable(m) {
            model.enabled_timed(m)
        } else {
            model.enabled_instantaneous(m)
        };
        let mut ig_fires = vec![false; ig_traces.len()];
        let mut og_fires = vec![false; og_traces.len()];
        for &a in &fireable {
            let act = model.activity(a);
            for g in act.input_gates() {
                ig_fires[g.index()] = true;
            }
            for case in act.cases() {
                for g in case.output_gates() {
                    og_fires[g.index()] = true;
                }
            }
        }

        for (idx, gate) in model.input_gates().iter().enumerate() {
            let (_, t) = trace::record(|| gate.holds(m));
            ig_traces[idx].predicate_reads.extend(t.reads());
            ig_traces[idx].touched.extend(t.touched());
            if ig_fires[idx] {
                let mut shadow = (*m).clone();
                let (_, t) = trace::record(|| gate.apply(&mut shadow));
                ig_traces[idx].function_writes.extend(t.writes());
                ig_traces[idx].touched.extend(t.touched());
            }
        }
        for (idx, gate) in model.output_gates().iter().enumerate() {
            if og_fires[idx] {
                let mut shadow = (*m).clone();
                let (_, t) = trace::record(|| gate.apply(&mut shadow));
                og_traces[idx].touched.extend(t.touched());
            }
        }
    }

    let mut out = Vec::new();
    for (gate, tr) in model.input_gates().iter().zip(&ig_traces) {
        if gate.is_pure_predicate() && !tr.function_writes.is_empty() {
            out.push(Diagnostic::new(
                NAME,
                Severity::Error,
                gate.name().to_owned(),
                format!(
                    "declared as a pure predicate but its marking function writes {}",
                    place_list(model, &tr.function_writes)
                ),
            ));
        }
        if let Some(declared) = gate.declared_touches() {
            let undeclared: BTreeSet<PlaceId> = tr
                .touched
                .iter()
                .copied()
                .filter(|p| !declared.contains(p))
                .collect();
            if !undeclared.is_empty() {
                out.push(Diagnostic::new(
                    NAME,
                    Severity::Error,
                    gate.name().to_owned(),
                    format!(
                        "accesses undeclared place(s) {}",
                        place_list(model, &undeclared)
                    ),
                ));
            }
        }
        if tr.predicate_reads.is_empty() {
            out.push(Diagnostic::new(
                NAME,
                Severity::Info,
                gate.name().to_owned(),
                "enabling predicate reads no place in any sampled marking: it is \
                 constant and the gate cannot express an enabling condition",
            ));
        }
    }

    for (gate, tr) in model.output_gates().iter().zip(&og_traces) {
        let Some(declared) = gate.declared_touches() else {
            continue;
        };
        let undeclared: BTreeSet<PlaceId> = tr
            .touched
            .iter()
            .copied()
            .filter(|p| !declared.contains(p))
            .collect();
        if !undeclared.is_empty() {
            out.push(Diagnostic::new(
                NAME,
                Severity::Error,
                gate.name().to_owned(),
                format!(
                    "accesses undeclared place(s) {}",
                    place_list(model, &undeclared)
                ),
            ));
        }
    }
    out
}

/// `` `a`, `b`, `c` `` rendering of a place set.
fn place_list(model: &SanModel, places: &BTreeSet<PlaceId>) -> String {
    places
        .iter()
        .map(|&p| format!("`{}`", model.place_name(p)))
        .collect::<Vec<_>>()
        .join(", ")
}

#[cfg(test)]
mod tests {
    use super::*;
    use ahs_san::{Delay, SanBuilder};

    fn lint(model: &SanModel) -> Vec<Diagnostic> {
        let cfg = LintConfig::default();
        let reach = ReachSet::explore(model, cfg.max_states);
        run(model, &reach, &cfg)
    }

    #[test]
    fn honest_gates_pass() {
        let mut b = SanBuilder::new("honest");
        let p = b.place_with_tokens("p", 1).unwrap();
        let counter = b.place("counter").unwrap();
        let guard = b.predicate_gate("guard", move |m| m.tokens(counter) < 3);
        let bump = b.output_gate_touching("bump", [counter], move |m| {
            m.add_tokens(counter, 1);
        });
        b.timed_activity("t", Delay::exponential(1.0))
            .unwrap()
            .input_place(p)
            .input_gate(guard)
            .output_place(p)
            .output_gate(bump)
            .build()
            .unwrap();
        let diags = lint(&b.build().unwrap());
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn impure_predicate_gate_is_an_error() {
        let mut b = SanBuilder::new("impure");
        let p = b.place_with_tokens("p", 1).unwrap();
        let counter = b.place("counter").unwrap();
        // Claims to be a pure predicate, but sneaks in a write through
        // the input-gate marking function.
        let g = b.input_gate(
            "sneaky",
            move |m| m.tokens(counter) < 3,
            move |m| m.add_tokens(counter, 1),
        );
        b.claim_pure_predicate(g);
        b.timed_activity("t", Delay::exponential(1.0))
            .unwrap()
            .input_place(p)
            .input_gate(g)
            .output_place(p)
            .build()
            .unwrap();
        let diags = lint(&b.build().unwrap());
        assert!(diags
            .iter()
            .any(|d| d.severity == Severity::Error && d.subject == "sneaky"));
    }

    #[test]
    fn undeclared_input_gate_access_is_an_error() {
        let mut b = SanBuilder::new("undeclared");
        let p = b.place_with_tokens("p", 1).unwrap();
        // `a` starts marked so the gated activity is fireable — marking
        // functions are only traced where their activity can fire.
        let a = b.place_with_tokens("a", 1).unwrap();
        let hidden = b.place("hidden").unwrap();
        let g = b.input_gate_touching(
            "partial",
            [a],
            move |m| m.is_marked(a),
            move |m| m.add_tokens(hidden, 1),
        );
        b.timed_activity("t", Delay::exponential(1.0))
            .unwrap()
            .input_place(p)
            .input_gate(g)
            .output_place(p)
            .output_place(a)
            .build()
            .unwrap();
        let diags = lint(&b.build().unwrap());
        let err = diags
            .iter()
            .find(|d| d.severity == Severity::Error)
            .expect("expected an undeclared-access error");
        assert_eq!(err.subject, "partial");
        assert!(err.message.contains("hidden"));
    }

    #[test]
    fn undeclared_output_gate_access_is_an_error() {
        let mut b = SanBuilder::new("og");
        let p = b.place_with_tokens("p", 1).unwrap();
        let a = b.place("a").unwrap();
        let hidden = b.place("hidden").unwrap();
        let g = b.output_gate_touching("og_partial", [a], move |m| {
            m.add_tokens(a, 1);
            m.add_tokens(hidden, 1);
        });
        b.timed_activity("t", Delay::exponential(1.0))
            .unwrap()
            .input_place(p)
            .output_place(p)
            .output_gate(g)
            .build()
            .unwrap();
        let diags = lint(&b.build().unwrap());
        assert!(diags.iter().any(|d| d.severity == Severity::Error
            && d.subject == "og_partial"
            && d.message.contains("hidden")));
    }

    #[test]
    fn constant_predicate_gets_a_note() {
        let mut b = SanBuilder::new("const_pred");
        let p = b.place_with_tokens("p", 1).unwrap();
        let g = b.predicate_gate("always", |_| true);
        b.timed_activity("t", Delay::exponential(1.0))
            .unwrap()
            .input_place(p)
            .input_gate(g)
            .output_place(p)
            .build()
            .unwrap();
        let diags = lint(&b.build().unwrap());
        assert!(diags
            .iter()
            .any(|d| d.severity == Severity::Info && d.subject == "always"));
    }
}
