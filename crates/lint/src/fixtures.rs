//! Deliberately broken (and one clean) demonstration models.
//!
//! These back the `ahs-lint` CLI's `broken-*` model names and the
//! crate's integration tests: each fixture triggers exactly one family
//! of defect, so `ahs-lint broken-rate` is a one-command demo of the
//! delay-sanity pass — and a CI canary that the pass still fires.

use ahs_san::{Delay, SanBuilder, SanModel};

/// A small, fully lint-clean model: a failure/repair cycle with a
/// declared bookkeeping gate. Linting it (with no allowlist) yields no
/// diagnostics at all.
pub fn clean_demo() -> SanModel {
    let mut b = SanBuilder::new("clean-demo");
    let up = b.place_with_tokens("up", 1).expect("fresh builder");
    let down = b.place("down").expect("fresh builder");
    let failures = b.place("failures").expect("fresh builder");
    // Saturating counter keeps the state space finite, so exploration
    // completes and the linter can certify the model outright.
    let count = b.output_gate_touching("count_failure", [failures], move |m| {
        if m.tokens(failures) < 5 {
            m.add_tokens(failures, 1);
        }
    });
    b.timed_activity("fail", Delay::exponential(1e-3))
        .expect("fresh name")
        .input_place(up)
        .output_place(down)
        .output_gate(count)
        .build()
        .expect("valid activity");
    b.timed_activity("repair", Delay::exponential(0.5))
        .expect("fresh name")
        .input_place(down)
        .output_place(up)
        .build()
        .expect("valid activity");
    b.build().expect("clean model builds")
}

/// Case-probability defect: a marking-dependent case distribution that
/// sums to 0.9 in every marking. The builder cannot see through the
/// closures; the linter samples reachable markings and reports it.
pub fn broken_case_sum() -> SanModel {
    let mut b = SanBuilder::new("broken-case-sum");
    let ready = b.place_with_tokens("ready", 1).expect("fresh builder");
    let ok = b.place("ok").expect("fresh builder");
    let ko = b.place("ko").expect("fresh builder");
    b.timed_activity("maneuver", Delay::exponential(1.0))
        .expect("fresh name")
        .input_place(ready)
        .case_fn(|_| 0.6)
        .output_place(ok)
        .case_fn(|_| 0.3)
        .output_place(ko)
        .build()
        .expect("builder accepts opaque cases");
    b.timed_activity("reset_ok", Delay::exponential(1.0))
        .expect("fresh name")
        .input_place(ok)
        .output_place(ready)
        .build()
        .expect("valid activity");
    b.timed_activity("reset_ko", Delay::exponential(1.0))
        .expect("fresh name")
        .input_place(ko)
        .output_place(ready)
        .build()
        .expect("valid activity");
    b.build().expect("model builds")
}

/// Structural defect: a place nothing can ever touch — no arc reaches
/// it and the model has no gates that could.
pub fn broken_orphan() -> SanModel {
    let mut b = SanBuilder::new("broken-orphan");
    let p = b.place_with_tokens("p", 1).expect("fresh builder");
    let q = b.place("q").expect("fresh builder");
    b.place("forgotten").expect("fresh builder");
    b.timed_activity("pq", Delay::exponential(1.0))
        .expect("fresh name")
        .input_place(p)
        .output_place(q)
        .build()
        .expect("valid activity");
    b.timed_activity("qp", Delay::exponential(1.0))
        .expect("fresh name")
        .input_place(q)
        .output_place(p)
        .build()
        .expect("valid activity");
    b.build().expect("model builds")
}

/// Delay defect: a marking-dependent exponential rate that goes
/// negative in a reachable marking (classic off-by-one in a
/// load-proportional rate).
pub fn broken_rate() -> SanModel {
    let mut b = SanBuilder::new("broken-rate");
    let slots = b.place_with_tokens("slots", 2).expect("fresh builder");
    let used = b.place("used").expect("fresh builder");
    b.timed_activity(
        "claim",
        Delay::exponential_fn(move |m| m.tokens(slots) as f64 - 3.0),
    )
    .expect("fresh name")
    .input_place(slots)
    .output_place(used)
    .build()
    .expect("valid activity");
    b.timed_activity("release", Delay::exponential(1.0))
        .expect("fresh name")
        .input_place(used)
        .output_place(slots)
        .build()
        .expect("valid activity");
    b.build().expect("model builds")
}

/// Gate defect: an input gate that claims purity but mutates the
/// marking, and an output gate that strays outside its declared touch
/// set.
pub fn broken_gate() -> SanModel {
    let mut b = SanBuilder::new("broken-gate");
    let p = b.place_with_tokens("p", 1).expect("fresh builder");
    let audit = b.place("audit").expect("fresh builder");
    let hidden = b.place("hidden").expect("fresh builder");
    let guard = b.input_gate(
        "impure_guard",
        move |m| m.tokens(audit) < 4,
        move |m| m.add_tokens(audit, 1),
    );
    b.claim_pure_predicate(guard);
    let og = b.output_gate_touching("leaky_logger", [audit], move |m| {
        m.add_tokens(audit, 1);
        m.add_tokens(hidden, 1);
    });
    b.timed_activity("step", Delay::exponential(1.0))
        .expect("fresh name")
        .input_place(p)
        .input_gate(guard)
        .output_place(p)
        .output_gate(og)
        .build()
        .expect("valid activity");
    b.build().expect("model builds")
}
