//! Kinematic platoon substrate for automated highway systems.
//!
//! The DSN 2009 safety study runs on top of the PATH platooning
//! architecture: real vehicles with longitudinal/lateral controllers,
//! intra-platoon gaps of 1–3 m, inter-platoon gaps of 30–60 m, and
//! recovery maneuvers whose end-to-end durations (2–4 minutes) become
//! the exponential maneuver rates (15–30 /hr) of the SAN models.
//!
//! This crate supplies that substrate in simulation: vehicle kinematics
//! ([`Vehicle`]), spacing policies ([`SpacingPolicy`]), platoon rosters
//! ([`Platoon`]), a longitudinal gap controller ([`GapController`]), the
//! six recovery maneuvers of the paper built from atomic maneuvers
//! ([`RecoveryManeuver`], [`ManeuverSimulator`]), and a duration model
//! ([`DurationModel`]) that reproduces the 2–4 minute window and thus
//! justifies the rates used by `ahs-core`.
//!
//! # Example
//!
//! ```
//! use ahs_platoon::{DurationModel, RecoveryManeuver};
//!
//! let model = DurationModel::default();
//! let stats = model.estimate(RecoveryManeuver::GentleStop, 400, 42);
//! // Gentle stop ends within the paper's 2..4-minute window.
//! assert!(stats.mean_seconds > 120.0 && stats.mean_seconds < 240.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod control;
mod duration;
mod error;
mod maneuver;
mod platoon;
mod spacing;
mod vehicle;

pub use control::GapController;
pub use duration::{DurationModel, DurationStats};
pub use error::PlatoonError;
pub use maneuver::{AtomicManeuver, ManeuverOutcomeKind, ManeuverSimulator, RecoveryManeuver};
pub use platoon::{Platoon, PlatoonRole};
pub use spacing::SpacingPolicy;
pub use vehicle::{Lane, Vehicle, VehicleId};
