//! Vehicle state and identity.

use serde::{Deserialize, Serialize};

/// Identifier of a vehicle within a highway scene.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct VehicleId(pub u32);

impl std::fmt::Display for VehicleId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// A highway lane (0 = rightmost / exit lane, matching the paper's
/// Figure 3 where lane 1 is the exit side).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Lane(pub u8);

/// Longitudinal kinematic state of one vehicle.
///
/// Positions are metres along the highway (increasing in the direction
/// of travel), speeds m/s, accelerations m/s².
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Vehicle {
    /// Identity.
    pub id: VehicleId,
    /// Current lane.
    pub lane: Lane,
    /// Position of the front bumper, metres.
    pub position: f64,
    /// Speed, m/s (non-negative).
    pub speed: f64,
    /// Commanded acceleration, m/s².
    pub accel: f64,
    /// Vehicle length, metres.
    pub length: f64,
}

impl Vehicle {
    /// Typical vehicle length used throughout the substrate, metres.
    pub const DEFAULT_LENGTH: f64 = 5.0;

    /// Creates a vehicle cruising at `speed` with zero acceleration.
    ///
    /// # Panics
    ///
    /// Panics if `speed` is negative or any input is non-finite.
    pub fn new(id: VehicleId, lane: Lane, position: f64, speed: f64) -> Self {
        assert!(position.is_finite(), "position must be finite");
        assert!(
            speed.is_finite() && speed >= 0.0,
            "speed must be non-negative"
        );
        Vehicle {
            id,
            lane,
            position,
            speed,
            accel: 0.0,
            length: Self::DEFAULT_LENGTH,
        }
    }

    /// Advances the vehicle by `dt` seconds under its commanded
    /// acceleration, clamping speed at zero (no reversing on a
    /// highway).
    ///
    /// # Panics
    ///
    /// Panics if `dt` is negative or non-finite.
    pub fn step(&mut self, dt: f64) {
        assert!(dt.is_finite() && dt >= 0.0, "dt must be non-negative");
        let v0 = self.speed;
        let v1 = (v0 + self.accel * dt).max(0.0);
        // Exact integration of the (possibly clamped) velocity profile.
        if self.accel < 0.0 && v1 == 0.0 && v0 > 0.0 {
            let t_stop = v0 / (-self.accel);
            self.position += v0 * t_stop + 0.5 * self.accel * t_stop * t_stop;
        } else {
            self.position += 0.5 * (v0 + v1) * dt;
        }
        self.speed = v1;
    }

    /// Bumper-to-bumper gap to the vehicle ahead (`ahead.position >
    /// self.position` expected); negative means overlap, i.e. a
    /// collision.
    pub fn gap_to(&self, ahead: &Vehicle) -> f64 {
        ahead.position - ahead.length - self.position
    }

    /// Whether this vehicle has (essentially) stopped.
    pub fn is_stopped(&self) -> bool {
        self.speed < 1e-9
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(pos: f64, speed: f64) -> Vehicle {
        Vehicle::new(VehicleId(1), Lane(0), pos, speed)
    }

    #[test]
    fn constant_speed_integration() {
        let mut car = v(0.0, 30.0);
        car.step(2.0);
        assert!((car.position - 60.0).abs() < 1e-12);
        assert_eq!(car.speed, 30.0);
    }

    #[test]
    fn braking_stops_at_zero_not_reverse() {
        let mut car = v(0.0, 10.0);
        car.accel = -5.0;
        car.step(10.0); // would reach -40 m/s unclamped
        assert!(car.is_stopped());
        // Stopping distance v²/2a = 100/10 = 10 m.
        assert!((car.position - 10.0).abs() < 1e-9);
    }

    #[test]
    fn acceleration_integration_is_exact() {
        let mut car = v(0.0, 0.0);
        car.accel = 2.0;
        car.step(3.0);
        assert!((car.speed - 6.0).abs() < 1e-12);
        assert!((car.position - 9.0).abs() < 1e-12);
    }

    #[test]
    fn gap_accounts_for_length() {
        let rear = v(0.0, 30.0);
        let mut front = v(8.0, 30.0);
        front.length = 5.0;
        assert!((rear.gap_to(&front) - 3.0).abs() < 1e-12);
        front.position = 4.0;
        assert!(rear.gap_to(&front) < 0.0, "overlap must read negative");
    }

    #[test]
    #[should_panic(expected = "speed must be non-negative")]
    fn negative_speed_rejected() {
        v(0.0, -1.0);
    }
}
