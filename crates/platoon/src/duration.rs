//! End-to-end maneuver duration model: coordination + kinematics +
//! highway clearing.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::maneuver::{ManeuverOutcomeKind, ManeuverSimulator, RecoveryManeuver};
use crate::spacing::SpacingPolicy;

/// Summary statistics of a maneuver duration estimate.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DurationStats {
    /// Mean end-to-end duration, seconds.
    pub mean_seconds: f64,
    /// Standard deviation, seconds.
    pub std_seconds: f64,
    /// Smallest observed duration, seconds.
    pub min_seconds: f64,
    /// Largest observed duration, seconds.
    pub max_seconds: f64,
    /// Number of Monte-Carlo samples behind the estimate.
    pub samples: u32,
}

impl DurationStats {
    /// The exponential rate (per hour) corresponding to the mean
    /// duration — the form used by the SAN models' maneuver activities.
    pub fn rate_per_hour(&self) -> f64 {
        3600.0 / self.mean_seconds
    }
}

/// End-to-end maneuver duration model.
///
/// The paper's maneuver execution rates (15–30 /hr, i.e. 2–4 minutes
/// per maneuver) cover far more than vehicle kinematics: inter-vehicle
/// coordination rounds, and — for the stop maneuvers — easing
/// congestion, diverting traffic and clearing the queued vehicles
/// (paper §2.1.1). This model composes:
///
/// * a kinematic term from [`ManeuverSimulator`] with a randomized
///   exit-ramp distance;
/// * a coordination term proportional to the number of involved
///   vehicles (more vehicles under centralized coordination — the
///   mechanism behind the paper's strategy sensitivity);
/// * a clearing/recovery term for maneuvers that stop traffic.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DurationModel {
    policy: SpacingPolicy,
    /// Seconds per coordination round-trip per involved vehicle.
    pub coordination_round_seconds: f64,
    /// Number of coordination rounds per maneuver.
    pub coordination_rounds: u32,
    /// Vehicles involved in the coordination (strategy-dependent).
    pub involved_vehicles: u32,
    /// Range of distances to the next exit ramp, metres.
    pub exit_distance_range: (f64, f64),
    /// Range of the traffic-clearing overhead for stop maneuvers,
    /// seconds.
    pub clearing_range: (f64, f64),
    /// Platoon size used for the kinematic simulation.
    pub platoon_size: usize,
}

impl DurationModel {
    /// Samples one end-to-end duration, seconds.
    fn sample(&self, maneuver: RecoveryManeuver, rng: &mut SmallRng) -> f64 {
        let exit_d = rng.random_range(self.exit_distance_range.0..self.exit_distance_range.1);
        let sim = ManeuverSimulator::new(self.policy).with_exit_distance(exit_d);
        let faulty = self.platoon_size / 2;
        let kinematic = match sim.simulate(maneuver, self.platoon_size, faulty) {
            Ok(ManeuverOutcomeKind::Completed { duration, .. }) => duration,
            Err(_) => sim_budget_fallback(),
        };
        let coordination = f64::from(self.coordination_rounds)
            * f64::from(self.involved_vehicles)
            * self.coordination_round_seconds;
        let clearing = if maneuver.stops_on_highway() {
            rng.random_range(self.clearing_range.0..self.clearing_range.1)
        } else {
            // Exit maneuvers still need the gap to close and the exit
            // ramp to clear, but no full traffic stop.
            rng.random_range(self.clearing_range.0 * 0.4..self.clearing_range.1 * 0.6)
        };
        kinematic + coordination + clearing
    }

    /// Estimates the duration distribution of `maneuver` from
    /// `samples` Monte-Carlo runs.
    ///
    /// # Panics
    ///
    /// Panics if `samples == 0`.
    pub fn estimate(&self, maneuver: RecoveryManeuver, samples: u32, seed: u64) -> DurationStats {
        assert!(samples > 0, "need at least one sample");
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut sum = 0.0;
        let mut sum_sq = 0.0;
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        for _ in 0..samples {
            let d = self.sample(maneuver, &mut rng);
            sum += d;
            sum_sq += d * d;
            min = min.min(d);
            max = max.max(d);
        }
        let mean = sum / f64::from(samples);
        let var = (sum_sq / f64::from(samples) - mean * mean).max(0.0);
        DurationStats {
            mean_seconds: mean,
            std_seconds: var.sqrt(),
            min_seconds: min,
            max_seconds: max,
            samples,
        }
    }

    /// Estimates all six maneuvers and returns `(maneuver, stats)` in
    /// Table 1 order.
    pub fn estimate_all(&self, samples: u32, seed: u64) -> Vec<(RecoveryManeuver, DurationStats)> {
        RecoveryManeuver::ALL
            .iter()
            .map(|&m| (m, self.estimate(m, samples, seed ^ m as u64)))
            .collect()
    }
}

fn sim_budget_fallback() -> f64 {
    // A failed kinematic run (timeout) is scored at the simulator's
    // budget; it feeds the conservative end of the distribution.
    1200.0
}

impl Default for DurationModel {
    fn default() -> Self {
        DurationModel {
            policy: SpacingPolicy::nominal(),
            coordination_round_seconds: 0.8,
            coordination_rounds: 4,
            involved_vehicles: 4,
            exit_distance_range: (600.0, 1600.0),
            clearing_range: (90.0, 160.0),
            platoon_size: 8,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_maneuvers_land_in_the_papers_window() {
        // Paper §4.1: maneuver durations between 2 and 4 minutes,
        // i.e. rates between 15 and 30 per hour.
        let model = DurationModel::default();
        for (m, stats) in model.estimate_all(120, 7) {
            let rate = stats.rate_per_hour();
            assert!(
                (10.0..=40.0).contains(&rate),
                "{m}: mean {}s → rate {rate}/hr outside sanity band",
                stats.mean_seconds
            );
            assert!(
                stats.mean_seconds > 100.0 && stats.mean_seconds < 300.0,
                "{m}: mean {}s outside ≈2–4 min window",
                stats.mean_seconds
            );
        }
    }

    #[test]
    fn stats_are_internally_consistent() {
        let model = DurationModel::default();
        let s = model.estimate(RecoveryManeuver::CrashStop, 50, 3);
        assert!(s.min_seconds <= s.mean_seconds && s.mean_seconds <= s.max_seconds);
        assert!(s.std_seconds >= 0.0);
        assert_eq!(s.samples, 50);
        assert!((s.rate_per_hour() - 3600.0 / s.mean_seconds).abs() < 1e-9);
    }

    #[test]
    fn more_involved_vehicles_slow_the_maneuver() {
        // The centralized-coordination mechanism: more involved
        // vehicles → longer coordination → slower maneuver.
        let few = DurationModel {
            involved_vehicles: 3,
            ..Default::default()
        };
        let many = DurationModel {
            involved_vehicles: 9,
            ..Default::default()
        };
        let d_few = few.estimate(RecoveryManeuver::TakeImmediateExitEscorted, 60, 11);
        let d_many = many.estimate(RecoveryManeuver::TakeImmediateExitEscorted, 60, 11);
        assert!(d_many.mean_seconds > d_few.mean_seconds);
    }

    #[test]
    fn estimates_are_deterministic_for_a_seed() {
        let model = DurationModel::default();
        let a = model.estimate(RecoveryManeuver::GentleStop, 30, 5);
        let b = model.estimate(RecoveryManeuver::GentleStop, 30, 5);
        assert_eq!(a, b);
    }
}
