//! Error type of the platoon substrate.

use crate::vehicle::{Lane, VehicleId};

/// Errors from roster operations and maneuver simulation.
#[derive(Debug, Clone, Copy, PartialEq)]
#[non_exhaustive]
pub enum PlatoonError {
    /// The platoon is at capacity.
    PlatoonFull {
        /// The capacity that was hit.
        capacity: usize,
    },
    /// The vehicle is already a member.
    AlreadyMember {
        /// The duplicate vehicle.
        vehicle: VehicleId,
    },
    /// The vehicle is not a member.
    NotAMember {
        /// The missing vehicle.
        vehicle: VehicleId,
    },
    /// A split index was out of range.
    InvalidSplit {
        /// Requested index.
        index: usize,
        /// Platoon size.
        len: usize,
    },
    /// Platoons in different lanes cannot merge.
    LaneMismatch {
        /// Lane of the receiving platoon.
        expected: Lane,
        /// Lane of the merged platoon.
        actual: Lane,
    },
    /// A maneuver simulation produced a collision (vehicles overlapped).
    Collision {
        /// The rear vehicle of the colliding pair.
        rear: VehicleId,
        /// The front vehicle of the colliding pair.
        front: VehicleId,
        /// Simulation time of the first overlap, seconds.
        at: f64,
    },
    /// A maneuver did not complete within its simulation budget.
    ManeuverTimeout {
        /// The budget, seconds.
        budget: f64,
    },
}

impl std::fmt::Display for PlatoonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlatoonError::PlatoonFull { capacity } => {
                write!(f, "platoon is full (capacity {capacity})")
            }
            PlatoonError::AlreadyMember { vehicle } => {
                write!(f, "vehicle {vehicle} is already a member")
            }
            PlatoonError::NotAMember { vehicle } => {
                write!(f, "vehicle {vehicle} is not a member")
            }
            PlatoonError::InvalidSplit { index, len } => {
                write!(f, "cannot split a {len}-vehicle platoon at index {index}")
            }
            PlatoonError::LaneMismatch { expected, actual } => write!(
                f,
                "cannot merge platoon from lane {} into lane {}",
                actual.0, expected.0
            ),
            PlatoonError::Collision { rear, front, at } => {
                write!(f, "vehicle {rear} collided with {front} at t={at:.2}s")
            }
            PlatoonError::ManeuverTimeout { budget } => {
                write!(f, "maneuver did not complete within {budget}s")
            }
        }
    }
}

impl std::error::Error for PlatoonError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = PlatoonError::Collision {
            rear: VehicleId(3),
            front: VehicleId(2),
            at: 1.25,
        };
        assert_eq!(e.to_string(), "vehicle v3 collided with v2 at t=1.25s");
    }
}
