//! Longitudinal gap controller.

use serde::{Deserialize, Serialize};

use crate::vehicle::Vehicle;

/// A proportional-derivative longitudinal controller tracking a target
/// bumper-to-bumper gap to the vehicle ahead — a simplified stand-in
/// for the PATH longitudinal control law, sufficient to reproduce
/// maneuver timings.
///
/// Command: `a = kp·(gap - target) + kv·(v_ahead - v)`, clamped to
/// `[max_brake, max_accel]`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GapController {
    /// Gap error gain, 1/s².
    pub kp: f64,
    /// Relative-speed gain, 1/s.
    pub kv: f64,
    /// Most negative commanded acceleration, m/s² (e.g. `-6.0`).
    pub max_brake: f64,
    /// Most positive commanded acceleration, m/s².
    pub max_accel: f64,
}

impl GapController {
    /// Gains giving a well-damped closed loop at platooning speeds.
    pub fn nominal() -> Self {
        GapController {
            kp: 0.4,
            kv: 1.2,
            max_brake: -6.0,
            max_accel: 2.5,
        }
    }

    /// Acceleration command for `follower` tracking `target_gap` behind
    /// `ahead`.
    pub fn command(&self, follower: &Vehicle, ahead: &Vehicle, target_gap: f64) -> f64 {
        let gap = follower.gap_to(ahead);
        let a = self.kp * (gap - target_gap) + self.kv * (ahead.speed - follower.speed);
        a.clamp(self.max_brake, self.max_accel)
    }

    /// Acceleration command toward a free-road speed setpoint.
    pub fn speed_command(&self, vehicle: &Vehicle, target_speed: f64) -> f64 {
        (self.kv * (target_speed - vehicle.speed)).clamp(self.max_brake, self.max_accel)
    }
}

impl Default for GapController {
    fn default() -> Self {
        GapController::nominal()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vehicle::{Lane, VehicleId};

    fn pair(gap: f64, v_rear: f64, v_front: f64) -> (Vehicle, Vehicle) {
        let front = Vehicle::new(VehicleId(0), Lane(0), 100.0, v_front);
        let rear = Vehicle::new(VehicleId(1), Lane(0), 100.0 - front.length - gap, v_rear);
        (rear, front)
    }

    #[test]
    fn equilibrium_commands_zero() {
        let c = GapController::nominal();
        let (rear, front) = pair(2.0, 30.0, 30.0);
        assert!(c.command(&rear, &front, 2.0).abs() < 1e-12);
    }

    #[test]
    fn too_close_brakes_too_far_accelerates() {
        let c = GapController::nominal();
        let (rear, front) = pair(0.5, 30.0, 30.0);
        assert!(c.command(&rear, &front, 2.0) < 0.0);
        let (rear, front) = pair(10.0, 30.0, 30.0);
        assert!(c.command(&rear, &front, 2.0) > 0.0);
    }

    #[test]
    fn commands_are_clamped() {
        let c = GapController::nominal();
        let (rear, front) = pair(500.0, 0.0, 30.0);
        assert_eq!(c.command(&rear, &front, 2.0), c.max_accel);
        let (rear, front) = pair(0.0, 60.0, 0.0);
        assert_eq!(c.command(&rear, &front, 2.0), c.max_brake);
    }

    #[test]
    fn closed_loop_converges_to_target_gap() {
        let c = GapController::nominal();
        let (mut rear, mut front) = pair(12.0, 25.0, 30.0);
        let dt = 0.05;
        for _ in 0..4000 {
            rear.accel = c.command(&rear, &front, 2.0);
            front.accel = 0.0;
            rear.step(dt);
            front.step(dt);
        }
        let gap = rear.gap_to(&front);
        assert!((gap - 2.0).abs() < 0.05, "converged gap {gap}");
        assert!((rear.speed - 30.0).abs() < 0.05);
    }

    #[test]
    fn speed_command_tracks_setpoint() {
        let c = GapController::nominal();
        let mut car = Vehicle::new(VehicleId(0), Lane(0), 0.0, 20.0);
        let dt = 0.05;
        for _ in 0..2000 {
            car.accel = c.speed_command(&car, 30.0);
            car.step(dt);
        }
        assert!((car.speed - 30.0).abs() < 0.01);
    }
}
