//! Intra- and inter-platoon spacing policies.

use serde::{Deserialize, Serialize};

/// Target gaps of the PATH platooning architecture (paper §2: intra
/// 1–3 m, inter-platoon 30–60 m).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SpacingPolicy {
    /// Bumper-to-bumper gap between platoon members, metres.
    pub intra_gap: f64,
    /// Gap between consecutive platoons in the same lane, metres.
    pub inter_gap: f64,
    /// Cruise speed, m/s.
    pub cruise_speed: f64,
}

impl SpacingPolicy {
    /// The paper's nominal configuration: 2 m intra, 45 m inter, 30 m/s
    /// (108 km/h) cruise.
    pub fn nominal() -> Self {
        SpacingPolicy {
            intra_gap: 2.0,
            inter_gap: 45.0,
            cruise_speed: 30.0,
        }
    }

    /// Validates the policy against the paper's ranges (intra 1–3 m,
    /// inter 30–60 m) and basic sanity.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if !(1.0..=3.0).contains(&self.intra_gap) {
            return Err(format!(
                "intra-platoon gap {} m outside the 1..=3 m range",
                self.intra_gap
            ));
        }
        if !(30.0..=60.0).contains(&self.inter_gap) {
            return Err(format!(
                "inter-platoon gap {} m outside the 30..=60 m range",
                self.inter_gap
            ));
        }
        if !self.cruise_speed.is_finite() || self.cruise_speed <= 0.0 {
            return Err(format!(
                "cruise speed {} must be positive",
                self.cruise_speed
            ));
        }
        Ok(())
    }

    /// Front-bumper position of member `index` (0 = leader) when the
    /// leader's front bumper is at `leader_position` and every member
    /// has length `vehicle_length`.
    pub fn member_position(&self, leader_position: f64, index: usize, vehicle_length: f64) -> f64 {
        leader_position - index as f64 * (vehicle_length + self.intra_gap)
    }

    /// Length of road occupied by a platoon of `n` vehicles.
    pub fn platoon_extent(&self, n: usize, vehicle_length: f64) -> f64 {
        if n == 0 {
            0.0
        } else {
            n as f64 * vehicle_length + (n - 1) as f64 * self.intra_gap
        }
    }

    /// Highway capacity gain of platooning: vehicles per km with
    /// platoons of `n` versus free agents keeping `inter_gap`.
    pub fn capacity_ratio(&self, n: usize, vehicle_length: f64) -> f64 {
        assert!(n > 0, "capacity of an empty platoon is undefined");
        let platooned = n as f64 / (self.platoon_extent(n, vehicle_length) + self.inter_gap);
        let free = 1.0 / (vehicle_length + self.inter_gap);
        platooned / free
    }
}

impl Default for SpacingPolicy {
    fn default() -> Self {
        SpacingPolicy::nominal()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nominal_is_valid() {
        SpacingPolicy::nominal().validate().unwrap();
    }

    #[test]
    fn out_of_range_rejected() {
        let mut p = SpacingPolicy::nominal();
        p.intra_gap = 0.5;
        assert!(p.validate().is_err());
        let mut p = SpacingPolicy::nominal();
        p.inter_gap = 100.0;
        assert!(p.validate().is_err());
        let mut p = SpacingPolicy::nominal();
        p.cruise_speed = 0.0;
        assert!(p.validate().is_err());
    }

    #[test]
    fn member_positions_descend_by_pitch() {
        let p = SpacingPolicy::nominal();
        let x0 = p.member_position(1000.0, 0, 5.0);
        let x1 = p.member_position(1000.0, 1, 5.0);
        let x2 = p.member_position(1000.0, 2, 5.0);
        assert_eq!(x0, 1000.0);
        assert!((x0 - x1 - 7.0).abs() < 1e-12);
        assert!((x1 - x2 - 7.0).abs() < 1e-12);
    }

    #[test]
    fn extent_and_capacity() {
        let p = SpacingPolicy::nominal();
        assert_eq!(p.platoon_extent(0, 5.0), 0.0);
        assert!((p.platoon_extent(1, 5.0) - 5.0).abs() < 1e-12);
        assert!((p.platoon_extent(10, 5.0) - (50.0 + 18.0)).abs() < 1e-12);
        // Platooning must beat free agents, and more so for larger n.
        let r5 = p.capacity_ratio(5, 5.0);
        let r10 = p.capacity_ratio(10, 5.0);
        assert!(r5 > 1.5);
        assert!(r10 > r5);
    }
}
