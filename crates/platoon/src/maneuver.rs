//! The paper's recovery maneuvers, decomposed into atomic maneuvers and
//! simulated kinematically.

use serde::{Deserialize, Serialize};

use crate::control::GapController;
use crate::error::PlatoonError;
use crate::spacing::SpacingPolicy;
use crate::vehicle::{Lane, Vehicle, VehicleId};

/// Atomic maneuvers of the PATH architecture (the building blocks of
/// Table 1's recovery maneuvers, per Lygeros et al.).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum AtomicManeuver {
    /// Split the platoon ahead of the faulty vehicle (open a gap).
    Split,
    /// Close the gap after the faulty vehicle left (merge back).
    Merge,
    /// Move one lane toward the exit side.
    ChangeLane,
    /// Decelerate to a stop at a given (negative) rate.
    BrakeToStop {
        /// Deceleration, m/s² (negative).
        rate: f64,
    },
    /// Proceed at reduced speed to the next exit ramp.
    ProceedToExit {
        /// Reduced travel speed, m/s.
        speed: f64,
    },
}

/// The six recovery maneuvers of Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RecoveryManeuver {
    /// GS — the faulty vehicle uses its brakes smoothly to stop
    /// (severity A1).
    GentleStop,
    /// CS — maximum emergency braking (severity A2).
    CrashStop,
    /// AS — the faulty vehicle is stopped by the vehicle immediately
    /// ahead (severity A3).
    AidedStop,
    /// TIE — leave at the next exit without assistance (severity B1).
    TakeImmediateExit,
    /// TIE-E — leave at the next exit escorted by adjacent vehicles
    /// (severity B2).
    TakeImmediateExitEscorted,
    /// TIE-N — normal exit for the least severe failures (severity C).
    TakeImmediateExitNormal,
}

impl RecoveryManeuver {
    /// All six maneuvers, in Table 1 order (FM1..FM6).
    pub const ALL: [RecoveryManeuver; 6] = [
        RecoveryManeuver::AidedStop,
        RecoveryManeuver::CrashStop,
        RecoveryManeuver::GentleStop,
        RecoveryManeuver::TakeImmediateExitEscorted,
        RecoveryManeuver::TakeImmediateExit,
        RecoveryManeuver::TakeImmediateExitNormal,
    ];

    /// The atomic-maneuver decomposition executed by the faulty vehicle
    /// (supporting vehicles run complementary splits/merges).
    pub fn atomic_sequence(self) -> Vec<AtomicManeuver> {
        match self {
            RecoveryManeuver::GentleStop => vec![
                AtomicManeuver::Split,
                AtomicManeuver::BrakeToStop { rate: -1.5 },
            ],
            RecoveryManeuver::CrashStop => vec![AtomicManeuver::BrakeToStop { rate: -6.0 }],
            RecoveryManeuver::AidedStop => vec![
                AtomicManeuver::Split,
                AtomicManeuver::BrakeToStop { rate: -4.0 },
            ],
            RecoveryManeuver::TakeImmediateExit => vec![
                AtomicManeuver::Split,
                AtomicManeuver::ChangeLane,
                AtomicManeuver::ProceedToExit { speed: 22.0 },
                AtomicManeuver::Merge,
            ],
            RecoveryManeuver::TakeImmediateExitEscorted => vec![
                AtomicManeuver::Split,
                AtomicManeuver::ChangeLane,
                AtomicManeuver::ProceedToExit { speed: 18.0 },
                AtomicManeuver::Merge,
            ],
            RecoveryManeuver::TakeImmediateExitNormal => vec![
                AtomicManeuver::ChangeLane,
                AtomicManeuver::ProceedToExit { speed: 25.0 },
            ],
        }
    }

    /// Whether the maneuver stops the faulty vehicle on the highway
    /// (class A) rather than taking it to an exit (classes B and C).
    pub fn stops_on_highway(self) -> bool {
        matches!(
            self,
            RecoveryManeuver::GentleStop
                | RecoveryManeuver::CrashStop
                | RecoveryManeuver::AidedStop
        )
    }

    /// Short PATH-style abbreviation (GS, CS, AS, TIE, TIE-E, TIE-N).
    pub fn abbreviation(self) -> &'static str {
        match self {
            RecoveryManeuver::GentleStop => "GS",
            RecoveryManeuver::CrashStop => "CS",
            RecoveryManeuver::AidedStop => "AS",
            RecoveryManeuver::TakeImmediateExit => "TIE",
            RecoveryManeuver::TakeImmediateExitEscorted => "TIE-E",
            RecoveryManeuver::TakeImmediateExitNormal => "TIE-N",
        }
    }
}

impl std::fmt::Display for RecoveryManeuver {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.abbreviation())
    }
}

/// How a kinematic maneuver simulation ended.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ManeuverOutcomeKind {
    /// The faulty vehicle stopped or exited and the platoon re-formed.
    Completed {
        /// Kinematic duration, seconds.
        duration: f64,
        /// Smallest bumper-to-bumper gap observed, metres.
        min_gap: f64,
    },
}

/// Kinematic simulator for recovery maneuvers.
///
/// Simulates the faulty vehicle, its followers (gap-controlled), and
/// the vehicles ahead through the maneuver's atomic sequence, with
/// per-step collision detection. Returns the kinematic duration — the
/// physical part of the paper's 2–4 minute maneuver window (the rest is
/// coordination and highway clearing, added by
/// [`DurationModel`](crate::DurationModel)).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ManeuverSimulator {
    policy: SpacingPolicy,
    controller: GapController,
    /// Integration step, seconds.
    dt: f64,
    /// Simulation budget, seconds.
    budget: f64,
    /// Distance to the next exit ramp, metres.
    exit_distance: f64,
    /// Fixed lateral lane-change time, seconds.
    lane_change_time: f64,
}

impl ManeuverSimulator {
    /// Creates a simulator with the nominal policy and controller.
    pub fn new(policy: SpacingPolicy) -> Self {
        ManeuverSimulator {
            policy,
            controller: GapController::nominal(),
            dt: 0.05,
            budget: 1200.0,
            exit_distance: 1000.0,
            lane_change_time: 5.0,
        }
    }

    /// Sets the distance to the next exit ramp.
    ///
    /// # Panics
    ///
    /// Panics if `metres` is not positive and finite.
    #[must_use]
    pub fn with_exit_distance(mut self, metres: f64) -> Self {
        assert!(
            metres.is_finite() && metres > 0.0,
            "exit distance must be positive"
        );
        self.exit_distance = metres;
        self
    }

    /// Simulates `maneuver` for the vehicle at `faulty_index` of a
    /// platoon with `size` members.
    ///
    /// # Errors
    ///
    /// Returns [`PlatoonError::Collision`] if any pair of vehicles
    /// overlaps, [`PlatoonError::ManeuverTimeout`] if the maneuver does
    /// not complete within the budget, or
    /// [`PlatoonError::NotAMember`]-style index errors via panic-free
    /// validation.
    ///
    /// # Panics
    ///
    /// Panics if `size == 0` or `faulty_index >= size`.
    pub fn simulate(
        &self,
        maneuver: RecoveryManeuver,
        size: usize,
        faulty_index: usize,
    ) -> Result<ManeuverOutcomeKind, PlatoonError> {
        assert!(size > 0, "platoon must not be empty");
        assert!(faulty_index < size, "faulty index out of range");

        // Materialize the platoon in lane 1, leader front bumper at 0.
        let mut vehicles: Vec<Vehicle> = (0..size)
            .map(|i| {
                let pos = self.policy.member_position(0.0, i, Vehicle::DEFAULT_LENGTH);
                Vehicle::new(VehicleId(i as u32), Lane(1), pos, self.policy.cruise_speed)
            })
            .collect();

        let sequence = maneuver.atomic_sequence();
        let mut phase = 0usize;
        let mut phase_start = 0.0f64;
        let mut t = 0.0f64;
        let mut min_gap = f64::INFINITY;
        let faulty_start_pos = vehicles[faulty_index].position;

        while t < self.budget {
            // --- phase logic for the faulty vehicle ---
            let done = match sequence.get(phase) {
                None => true,
                Some(AtomicManeuver::Split) if faulty_index + 1 < vehicles.len() => {
                    // Open the gap behind the faulty vehicle to the
                    // inter-platoon distance before doing anything rash.
                    let gap = vehicles[faulty_index + 1].gap_to(&vehicles[faulty_index]);
                    gap >= self.policy.inter_gap * 0.5
                }
                Some(AtomicManeuver::Split) => true,
                Some(AtomicManeuver::ChangeLane) => t - phase_start >= self.lane_change_time,
                Some(AtomicManeuver::BrakeToStop { .. }) => vehicles[faulty_index].is_stopped(),
                Some(AtomicManeuver::ProceedToExit { .. }) => {
                    vehicles[faulty_index].position - faulty_start_pos >= self.exit_distance
                }
                Some(AtomicManeuver::Merge) => {
                    // Followers have closed back to intra-platoon gaps.
                    in_formation(&vehicles, faulty_index, &self.policy)
                }
            };
            if done {
                phase += 1;
                phase_start = t;
                if phase >= sequence.len() {
                    return Ok(ManeuverOutcomeKind::Completed {
                        duration: t,
                        min_gap,
                    });
                }
                continue;
            }

            // --- control commands ---
            for i in 0..vehicles.len() {
                if i == faulty_index {
                    vehicles[i].accel = match sequence[phase] {
                        AtomicManeuver::Split => {
                            // Ease off slightly so the rear gap opens.
                            self.controller
                                .speed_command(&vehicles[i], self.policy.cruise_speed * 0.9)
                        }
                        AtomicManeuver::ChangeLane => {
                            if t - phase_start >= self.lane_change_time * 0.5 {
                                vehicles[i].lane = Lane(0);
                            }
                            0.0
                        }
                        AtomicManeuver::BrakeToStop { rate } => {
                            if vehicles[i].is_stopped() {
                                0.0
                            } else {
                                rate
                            }
                        }
                        AtomicManeuver::ProceedToExit { speed } => {
                            self.controller.speed_command(&vehicles[i], speed)
                        }
                        AtomicManeuver::Merge => self.controller.speed_command(&vehicles[i], 0.0),
                    };
                    continue;
                }
                // Healthy vehicles: follow the predecessor *in their
                // lane*; the platoon ahead of the faulty vehicle keeps
                // cruising. Following is cooperative (CACC-style): the
                // predecessor's commanded acceleration is fed forward,
                // which is what lets a 2 m platoon gap survive
                // emergency braking — the coordinated-braking property
                // of the PATH design. A vehicle directly behind the
                // faulty one keeps the opened split-out distance
                // instead of the tight formation gap.
                let ahead = vehicles[..i]
                    .iter()
                    .rev()
                    .find(|v| v.lane == vehicles[i].lane)
                    .copied();
                vehicles[i].accel = match ahead {
                    Some(ahead_v) => {
                        let target = if ahead_v.id == vehicles[faulty_index].id {
                            self.policy.inter_gap * 0.55
                        } else {
                            self.policy.intra_gap
                        };
                        let pd = self.controller.command(&vehicles[i], &ahead_v, target);
                        (ahead_v.accel + pd)
                            .clamp(self.controller.max_brake, self.controller.max_accel)
                    }
                    None => self
                        .controller
                        .speed_command(&vehicles[i], self.policy.cruise_speed),
                };
            }

            // --- integrate and check separation per lane ---
            for v in &mut vehicles {
                v.step(self.dt);
            }
            t += self.dt;
            for lane in [Lane(0), Lane(1)] {
                let mut in_lane: Vec<&Vehicle> =
                    vehicles.iter().filter(|v| v.lane == lane).collect();
                in_lane.sort_by(|a, b| {
                    a.position
                        .partial_cmp(&b.position)
                        .expect("positions are finite")
                });
                for pair in in_lane.windows(2) {
                    let gap = pair[0].gap_to(pair[1]);
                    min_gap = min_gap.min(gap);
                    if gap < 0.0 {
                        return Err(PlatoonError::Collision {
                            rear: pair[0].id,
                            front: pair[1].id,
                            at: t,
                        });
                    }
                }
            }
        }
        Err(PlatoonError::ManeuverTimeout {
            budget: self.budget,
        })
    }
}

impl Default for ManeuverSimulator {
    fn default() -> Self {
        ManeuverSimulator::new(SpacingPolicy::nominal())
    }
}

/// Whether the vehicles behind `faulty_index` (exclusive) have closed to
/// near-formation gaps with the vehicles ahead, in lane 1.
fn in_formation(vehicles: &[Vehicle], faulty_index: usize, policy: &SpacingPolicy) -> bool {
    let lane1: Vec<&Vehicle> = vehicles
        .iter()
        .enumerate()
        .filter(|(i, v)| *i != faulty_index && v.lane == Lane(1))
        .map(|(_, v)| v)
        .collect();
    lane1.windows(2).all(|pair| {
        let gap = pair[1].gap_to(pair[0]);
        gap <= policy.intra_gap * 4.0
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_six_manoeuvres_have_sequences() {
        for m in RecoveryManeuver::ALL {
            assert!(!m.atomic_sequence().is_empty(), "{m} has no sequence");
        }
    }

    #[test]
    fn class_a_manoeuvres_stop_on_highway() {
        assert!(RecoveryManeuver::GentleStop.stops_on_highway());
        assert!(RecoveryManeuver::CrashStop.stops_on_highway());
        assert!(RecoveryManeuver::AidedStop.stops_on_highway());
        assert!(!RecoveryManeuver::TakeImmediateExit.stops_on_highway());
        assert!(!RecoveryManeuver::TakeImmediateExitEscorted.stops_on_highway());
        assert!(!RecoveryManeuver::TakeImmediateExitNormal.stops_on_highway());
    }

    #[test]
    fn crash_stop_completes_without_collision() {
        let sim = ManeuverSimulator::default();
        let out = sim.simulate(RecoveryManeuver::CrashStop, 5, 2).unwrap();
        let ManeuverOutcomeKind::Completed { duration, min_gap } = out;
        // 30 m/s at 6 m/s² is a 5 s stop.
        assert!((4.9..60.0).contains(&duration), "duration {duration}");
        assert!(min_gap >= 0.0);
    }

    #[test]
    fn gentle_stop_takes_longer_than_crash_stop() {
        let sim = ManeuverSimulator::default();
        let ManeuverOutcomeKind::Completed { duration: gs, .. } =
            sim.simulate(RecoveryManeuver::GentleStop, 5, 2).unwrap();
        let ManeuverOutcomeKind::Completed { duration: cs, .. } =
            sim.simulate(RecoveryManeuver::CrashStop, 5, 2).unwrap();
        assert!(gs > cs, "GS {gs}s should exceed CS {cs}s");
    }

    #[test]
    fn tie_reaches_the_exit() {
        let sim = ManeuverSimulator::default().with_exit_distance(800.0);
        let ManeuverOutcomeKind::Completed { duration, .. } = sim
            .simulate(RecoveryManeuver::TakeImmediateExit, 6, 3)
            .unwrap();
        // 800 m at 22-30 m/s is ≈27-36 s plus split/lane-change/merge time.
        assert!(duration > 25.0 && duration < 300.0, "duration {duration}");
    }

    #[test]
    fn longer_exit_distance_takes_longer() {
        let near = ManeuverSimulator::default().with_exit_distance(500.0);
        let far = ManeuverSimulator::default().with_exit_distance(1500.0);
        let ManeuverOutcomeKind::Completed {
            duration: d_near, ..
        } = near
            .simulate(RecoveryManeuver::TakeImmediateExitNormal, 4, 1)
            .unwrap();
        let ManeuverOutcomeKind::Completed {
            duration: d_far, ..
        } = far
            .simulate(RecoveryManeuver::TakeImmediateExitNormal, 4, 1)
            .unwrap();
        assert!(d_far > d_near);
    }

    #[test]
    fn leader_fault_works_too() {
        let sim = ManeuverSimulator::default();
        for m in RecoveryManeuver::ALL {
            let out = sim.simulate(m, 4, 0);
            assert!(out.is_ok(), "{m} with faulty leader: {out:?}");
        }
    }

    #[test]
    fn singleton_platoon_every_maneuver() {
        let sim = ManeuverSimulator::default();
        for m in RecoveryManeuver::ALL {
            let out = sim.simulate(m, 1, 0);
            assert!(out.is_ok(), "{m} as free agent: {out:?}");
        }
    }

    #[test]
    fn display_abbreviations() {
        assert_eq!(
            RecoveryManeuver::TakeImmediateExitEscorted.to_string(),
            "TIE-E"
        );
        assert_eq!(RecoveryManeuver::GentleStop.to_string(), "GS");
    }
}
