//! Platoon rosters: leader/follower structure and membership events.

use serde::{Deserialize, Serialize};

use crate::error::PlatoonError;
use crate::spacing::SpacingPolicy;
use crate::vehicle::{Lane, Vehicle, VehicleId};

/// Role of a vehicle within its platoon.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PlatoonRole {
    /// First vehicle; coordinates intra-platoon maneuvers and speaks
    /// for the platoon in inter-platoon coordination.
    Leader,
    /// Any non-leader member.
    Follower,
    /// A single-vehicle platoon (the paper's *free agent*).
    FreeAgent,
}

/// An ordered platoon of vehicles in one lane (index 0 = leader).
///
/// The roster enforces the paper's structural rules: a non-empty platoon
/// always has a leader (position 0), joining vehicles take the last
/// position (§3.2.3: "each time a vehicle joins a platoon, it occupies
/// the last position"), and when the leader leaves the next vehicle is
/// promoted.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Platoon {
    lane: Lane,
    members: Vec<VehicleId>,
    capacity: usize,
}

impl Platoon {
    /// Creates an empty platoon in `lane` with maximum size `capacity`
    /// (the paper's `n`).
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn new(lane: Lane, capacity: usize) -> Self {
        assert!(capacity > 0, "platoon capacity must be positive");
        Platoon {
            lane,
            members: Vec::new(),
            capacity,
        }
    }

    /// The platoon's lane.
    pub fn lane(&self) -> Lane {
        self.lane
    }

    /// Maximum number of members.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current number of members.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Whether the platoon has no members.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Whether the platoon is at capacity.
    pub fn is_full(&self) -> bool {
        self.members.len() >= self.capacity
    }

    /// Members in order (0 = leader).
    pub fn members(&self) -> &[VehicleId] {
        &self.members
    }

    /// The current leader, if any.
    pub fn leader(&self) -> Option<VehicleId> {
        self.members.first().copied()
    }

    /// Role of a member.
    pub fn role_of(&self, id: VehicleId) -> Option<PlatoonRole> {
        let idx = self.position_of(id)?;
        Some(if self.members.len() == 1 {
            PlatoonRole::FreeAgent
        } else if idx == 0 {
            PlatoonRole::Leader
        } else {
            PlatoonRole::Follower
        })
    }

    /// Index of a member (0 = leader).
    pub fn position_of(&self, id: VehicleId) -> Option<usize> {
        self.members.iter().position(|&m| m == id)
    }

    /// Adds a vehicle at the last position.
    ///
    /// # Errors
    ///
    /// Returns [`PlatoonError::PlatoonFull`] at capacity or
    /// [`PlatoonError::AlreadyMember`] for a duplicate join.
    pub fn join(&mut self, id: VehicleId) -> Result<usize, PlatoonError> {
        if self.is_full() {
            return Err(PlatoonError::PlatoonFull {
                capacity: self.capacity,
            });
        }
        if self.members.contains(&id) {
            return Err(PlatoonError::AlreadyMember { vehicle: id });
        }
        self.members.push(id);
        Ok(self.members.len() - 1)
    }

    /// Removes a vehicle; followers behind it close up (their indices
    /// shift down) and, if the leader left, the next member is promoted.
    ///
    /// # Errors
    ///
    /// Returns [`PlatoonError::NotAMember`] if absent.
    pub fn leave(&mut self, id: VehicleId) -> Result<(), PlatoonError> {
        match self.position_of(id) {
            Some(idx) => {
                self.members.remove(idx);
                Ok(())
            }
            None => Err(PlatoonError::NotAMember { vehicle: id }),
        }
    }

    /// Splits the platoon before `index`: members `index..` form and
    /// are returned as a new platoon in the same lane.
    ///
    /// # Errors
    ///
    /// Returns [`PlatoonError::InvalidSplit`] unless
    /// `1 <= index < len()`.
    pub fn split_at(&mut self, index: usize) -> Result<Platoon, PlatoonError> {
        if index == 0 || index >= self.members.len() {
            return Err(PlatoonError::InvalidSplit {
                index,
                len: self.members.len(),
            });
        }
        let tail = self.members.split_off(index);
        Ok(Platoon {
            lane: self.lane,
            members: tail,
            capacity: self.capacity,
        })
    }

    /// Merges `other` (which must trail in the same lane) into this
    /// platoon; its members append in order.
    ///
    /// # Errors
    ///
    /// Returns [`PlatoonError::LaneMismatch`] for cross-lane merges or
    /// [`PlatoonError::PlatoonFull`] if the union exceeds capacity.
    pub fn merge(&mut self, other: Platoon) -> Result<(), PlatoonError> {
        if other.lane != self.lane {
            return Err(PlatoonError::LaneMismatch {
                expected: self.lane,
                actual: other.lane,
            });
        }
        if self.members.len() + other.members.len() > self.capacity {
            return Err(PlatoonError::PlatoonFull {
                capacity: self.capacity,
            });
        }
        self.members.extend(other.members);
        Ok(())
    }

    /// Materializes the roster into vehicles at their target positions
    /// under `policy`, with the leader's front bumper at
    /// `leader_position`, all at cruise speed.
    pub fn materialize(&self, policy: &SpacingPolicy, leader_position: f64) -> Vec<Vehicle> {
        self.members
            .iter()
            .enumerate()
            .map(|(i, &id)| {
                let pos = policy.member_position(leader_position, i, Vehicle::DEFAULT_LENGTH);
                Vehicle::new(id, self.lane, pos, policy.cruise_speed)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn platoon_with(n: u32) -> Platoon {
        let mut p = Platoon::new(Lane(1), 10);
        for i in 0..n {
            p.join(VehicleId(i)).unwrap();
        }
        p
    }

    #[test]
    fn join_takes_last_position() {
        let p = platoon_with(3);
        assert_eq!(p.position_of(VehicleId(0)), Some(0));
        assert_eq!(p.position_of(VehicleId(2)), Some(2));
        assert_eq!(p.leader(), Some(VehicleId(0)));
        assert_eq!(p.role_of(VehicleId(0)), Some(PlatoonRole::Leader));
        assert_eq!(p.role_of(VehicleId(1)), Some(PlatoonRole::Follower));
    }

    #[test]
    fn free_agent_role() {
        let p = platoon_with(1);
        assert_eq!(p.role_of(VehicleId(0)), Some(PlatoonRole::FreeAgent));
    }

    #[test]
    fn leader_leave_promotes_next() {
        let mut p = platoon_with(3);
        p.leave(VehicleId(0)).unwrap();
        assert_eq!(p.leader(), Some(VehicleId(1)));
        assert_eq!(p.len(), 2);
    }

    #[test]
    fn capacity_enforced() {
        let mut p = Platoon::new(Lane(0), 2);
        p.join(VehicleId(0)).unwrap();
        p.join(VehicleId(1)).unwrap();
        assert!(matches!(
            p.join(VehicleId(2)),
            Err(PlatoonError::PlatoonFull { capacity: 2 })
        ));
    }

    #[test]
    fn duplicate_join_rejected() {
        let mut p = platoon_with(2);
        assert!(matches!(
            p.join(VehicleId(1)),
            Err(PlatoonError::AlreadyMember { .. })
        ));
    }

    #[test]
    fn split_and_merge_roundtrip() {
        let mut p = platoon_with(5);
        let tail = p.split_at(2).unwrap();
        assert_eq!(p.len(), 2);
        assert_eq!(tail.len(), 3);
        assert_eq!(tail.leader(), Some(VehicleId(2)));
        p.merge(tail).unwrap();
        assert_eq!(p.len(), 5);
        assert_eq!(p.members()[4], VehicleId(4));
    }

    #[test]
    fn invalid_split_rejected() {
        let mut p = platoon_with(3);
        assert!(matches!(
            p.split_at(0),
            Err(PlatoonError::InvalidSplit { .. })
        ));
        assert!(matches!(
            p.split_at(3),
            Err(PlatoonError::InvalidSplit { .. })
        ));
    }

    #[test]
    fn cross_lane_merge_rejected() {
        let mut p = platoon_with(2);
        let other = Platoon::new(Lane(0), 10);
        assert!(matches!(
            p.merge(other),
            Err(PlatoonError::LaneMismatch { .. })
        ));
    }

    #[test]
    fn materialize_respects_spacing() {
        let p = platoon_with(3);
        let policy = SpacingPolicy::nominal();
        let vehicles = p.materialize(&policy, 500.0);
        assert_eq!(vehicles.len(), 3);
        for pair in vehicles.windows(2) {
            let gap = pair[1].gap_to(&pair[0]);
            assert!((gap - policy.intra_gap).abs() < 1e-9, "gap {gap}");
        }
    }
}
