//! String-stability and disturbance-rejection tests of the platoon
//! substrate: a platoon under cooperative gap control must attenuate
//! (not amplify) a leader disturbance as it propagates down the
//! string, and must never collide under the maneuvers it executes.

use ahs_platoon::{
    GapController, ManeuverOutcomeKind, ManeuverSimulator, RecoveryManeuver, SpacingPolicy,
    Vehicle, VehicleId,
};
use ahs_platoon::{Lane, Platoon};

/// Simulates an n-vehicle string with the leader following a given
/// acceleration profile, with or without predecessor-acceleration
/// feedforward (CACC versus plain ACC). Returns the maximum absolute
/// gap error per follower.
fn propagate_disturbance(
    n: usize,
    feedforward: bool,
    leader_profile: impl Fn(f64) -> f64,
) -> Vec<f64> {
    let policy = SpacingPolicy::nominal();
    let controller = GapController::nominal();
    let mut platoon = Platoon::new(Lane(1), n);
    for i in 0..n {
        platoon.join(VehicleId(i as u32)).unwrap();
    }
    let mut vehicles: Vec<Vehicle> = platoon.materialize(&policy, 0.0);
    let dt = 0.02;
    let mut max_err = vec![0.0_f64; n];
    let mut t = 0.0;
    while t < 60.0 {
        vehicles[0].accel = leader_profile(t);
        for i in 1..n {
            let ahead = vehicles[i - 1];
            let pd = controller.command(&vehicles[i], &ahead, policy.intra_gap);
            let ff = if feedforward { ahead.accel } else { 0.0 };
            vehicles[i].accel = (ff + pd).clamp(controller.max_brake, controller.max_accel);
        }
        for v in &mut vehicles {
            v.step(dt);
        }
        for i in 1..n {
            let err = (vehicles[i].gap_to(&vehicles[i - 1]) - policy.intra_gap).abs();
            max_err[i] = max_err[i].max(err);
        }
        t += dt;
    }
    max_err
}

#[test]
fn cooperative_braking_keeps_the_string_tight() {
    // Leader brakes at -3 m/s² for 2 s, then resumes cruise. With
    // acceleration feedforward (the communicated coordinated braking
    // of the PATH design) every follower tracks essentially exactly —
    // this is why 2 m gaps are survivable at all.
    let errs = propagate_disturbance(
        8,
        true,
        |t| {
            if (5.0..7.0).contains(&t) {
                -3.0
            } else {
                0.0
            }
        },
    );
    for (i, e) in errs.iter().enumerate().skip(1) {
        assert!(*e < 0.05, "CACC follower {i} gap error {e} too large");
    }
}

#[test]
fn plain_acc_amplifies_the_disturbance_down_the_string() {
    // Without the communicated feedforward, a constant-gap PD string
    // is string-UNSTABLE: the same braking pulse grows along the
    // string. This contrast is the classical motivation for
    // inter-vehicle communication in platooning.
    let errs = propagate_disturbance(
        8,
        false,
        |t| {
            if (5.0..7.0).contains(&t) {
                -3.0
            } else {
                0.0
            }
        },
    );
    assert!(errs[1] > 0.05, "disturbance must be visible at follower 1");
    assert!(
        errs[7] > errs[1],
        "expected amplification down the string: {:?}",
        &errs[1..]
    );
}

#[test]
fn sinusoidal_leader_does_not_destabilize_cacc() {
    let errs = propagate_disturbance(6, true, |t| 0.5 * (0.5 * t).sin());
    for (i, e) in errs.iter().enumerate().skip(1) {
        assert!(*e < 0.5, "follower {i} gap error {e} too large");
    }
}

#[test]
fn no_maneuver_produces_a_collision_across_positions() {
    // Sweep the faulty position through an 8-vehicle platoon for every
    // recovery maneuver; the simulator reports collisions as errors.
    let sim = ManeuverSimulator::new(SpacingPolicy::nominal());
    for m in RecoveryManeuver::ALL {
        for faulty in 0..8 {
            let out = sim.simulate(m, 8, faulty);
            match out {
                Ok(ManeuverOutcomeKind::Completed { min_gap, .. }) => {
                    assert!(min_gap >= 0.0, "{m} at {faulty}: negative gap")
                }
                Err(e) => panic!("{m} at position {faulty} failed: {e}"),
            }
        }
    }
}

#[test]
fn crash_stop_is_hardest_on_the_following_gap() {
    let sim = ManeuverSimulator::new(SpacingPolicy::nominal());
    let min_gap_of = |m: RecoveryManeuver| -> f64 {
        match sim.simulate(m, 6, 2).unwrap() {
            ManeuverOutcomeKind::Completed { min_gap, .. } => min_gap,
        }
    };
    let cs = min_gap_of(RecoveryManeuver::CrashStop);
    let gs = min_gap_of(RecoveryManeuver::GentleStop);
    assert!(
        cs <= gs + 1e-9,
        "emergency braking should squeeze gaps at least as hard as a gentle stop: CS {cs} vs GS {gs}"
    );
}
