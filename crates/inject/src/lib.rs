//! Deterministic fault injection (`ahs-inject`).
//!
//! The workspace's recovery stack — checkpoints, quarantine, watchdog,
//! graceful interruption, retrying IO — makes claims that only count
//! once they are exercised under injected faults, exactly as the
//! paper's recovery maneuvers are only trusted because the SAN model
//! injects failures at the worst moments. This crate is the injector:
//! a process-wide registry of **named failpoints**, each driven by a
//! deterministic, schedule-based action so every chaos run is exactly
//! reproducible.
//!
//! In the spirit of the `fail` crate, but with two deliberate
//! differences: actions are *scheduled by hit count* (never sampled at
//! run time), and the set of failpoints is a static [`catalog`] so a
//! chaos sweep can prove it covered every one.
//!
//! # Feature gating
//!
//! Everything is behind the `inject` cargo feature. Without it,
//! [`eval`] is a constant `None` that inlines to nothing — call sites
//! stay in the source, the compiled artifact carries no registry, no
//! locks, and no overhead. [`configure_from_spec`] with a non-empty
//! spec then fails loudly ([`SpecError::Disabled`]) instead of
//! silently ignoring the request.
//!
//! # Spec syntax
//!
//! Configured from `AHS_FAILPOINTS` (or `--failpoints` on the CLI):
//!
//! ```text
//! spec     := entry (';' entry)*
//! entry    := failpoint-name '=' term ('->' term)*
//! term     := [count '*'] action
//! action   := 'off'
//!           | 'return' [ '(' kind ')' ]        error kinds: enospc, interrupted,
//!                                              wouldblock, timedout, busy,
//!                                              invalid-input, not-found,
//!                                              permission-denied, broken-pipe, other
//!           | 'panic' [ '(' message ')' ]
//!           | 'delay' '(' millis ')'
//!           | 'torn-write' '(' nbytes ')'
//!           | 'corrupt-bytes' [ '(' nbytes ')' ]
//!           | 'raise-interrupt'
//! ```
//!
//! Terms consume evaluations in order; a term without a count repeats
//! forever, and an exhausted schedule means `off`. So
//! `des::replication::body=3*off->1*panic(chaos)` panics exactly the
//! fourth replication body and nothing else, every run.
//!
//! # Example
//!
//! ```
//! // Works with or without the `inject` feature: disabled, eval() is None
//! // and a non-empty configure fails loudly.
//! if ahs_inject::enabled() {
//!     ahs_inject::configure_from_spec("obs::fsio::rename=1*return(enospc)").unwrap();
//!     assert!(ahs_inject::eval("obs::fsio::rename").is_some());
//!     assert!(ahs_inject::eval("obs::fsio::rename").is_none()); // schedule exhausted
//!     ahs_inject::clear();
//! } else {
//!     assert!(ahs_inject::eval("obs::fsio::rename").is_none());
//!     assert!(ahs_inject::configure_from_spec("x=panic").is_err());
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod catalog;
mod spec;

pub use catalog::{catalog, is_registered, FailpointDesc};
pub use spec::{IoKind, SpecError};

use spec::{ActionSpec, Entry};

/// Environment variable consulted by [`configure_from_env`].
pub const ENV_VAR: &str = "AHS_FAILPOINTS";

/// The fault a failpoint evaluation asks its site to inject.
///
/// `Error`, `Panic`, and `Delay` have uniform meanings; `TornWrite`,
/// `CorruptBytes`, and `RaiseInterrupt` are interpreted by the site
/// (see the [`catalog`] for which failpoint supports which action).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Fault {
    /// Fail the operation with an IO error of the given kind.
    Error(IoKind),
    /// Panic with the given message (sites inside `catch_unwind`
    /// surface this as a quarantined replication).
    Panic(String),
    /// Stall for the given number of milliseconds.
    Delay(u64),
    /// Truncate the bytes about to be written to the given length and
    /// then fail, simulating a torn write.
    TornWrite(usize),
    /// Corrupt the leading `n` bytes of the document in flight
    /// (deterministic XOR — always *detectable* corruption, which is
    /// the interesting case for generation fallback).
    CorruptBytes(usize),
    /// Raise the process interrupt flag, as if SIGINT had arrived.
    RaiseInterrupt,
}

impl Fault {
    /// The IO error this fault injects, for `Error` and `TornWrite`
    /// faults (torn writes surface as transient `Interrupted` errors so
    /// the retry layer gets a chance to repair them).
    pub fn to_io_error(&self, site: &str) -> Option<std::io::Error> {
        match self {
            Fault::Error(kind) => Some(std::io::Error::new(
                kind.to_error_kind(),
                format!("injected fault at {site}: {kind}"),
            )),
            Fault::TornWrite(n) => Some(std::io::Error::new(
                std::io::ErrorKind::Interrupted,
                format!("injected torn write at {site}: only {n} byte(s) reached the disk"),
            )),
            _ => None,
        }
    }
}

/// Deterministically corrupts the first `n` bytes of `bytes` in place
/// (XOR with 0xFF). Corrupting the document *header* guarantees the
/// damage is detectable by any structural validator, which is the
/// scenario generation fallback exists for.
pub fn corrupt_prefix(bytes: &mut [u8], n: usize) {
    let n = n.min(bytes.len());
    for b in &mut bytes[..n] {
        *b ^= 0xFF;
    }
}

/// Fires an IO-layer failpoint: `Error` faults become `Err`, `Panic`
/// panics, `Delay` sleeps inline, and the data-shaping faults
/// (`TornWrite`, `CorruptBytes`, `RaiseInterrupt`) are handed back for
/// site-specific interpretation.
///
/// # Errors
///
/// Returns the injected [`std::io::Error`] when the active schedule
/// says this evaluation fails.
pub fn fire_io(name: &str) -> std::io::Result<Option<Fault>> {
    match eval(name) {
        Some(Fault::Error(kind)) => Err(Fault::Error(kind).to_io_error(name).expect("error fault")),
        Some(Fault::Panic(msg)) => panic!("injected panic at {name}: {msg}"),
        Some(Fault::Delay(ms)) => {
            std::thread::sleep(std::time::Duration::from_millis(ms));
            Ok(None)
        }
        other => Ok(other),
    }
}

/// Whether this build carries the failpoint registry (the `inject`
/// cargo feature).
pub fn enabled() -> bool {
    cfg!(feature = "inject")
}

/// Configures the registry from [`ENV_VAR`], returning whether a spec
/// was found and applied. An unset or empty variable is not an error.
///
/// # Errors
///
/// Returns [`SpecError`] when the variable is set but malformed, names
/// an unregistered failpoint, or this build lacks the `inject` feature.
pub fn configure_from_env() -> Result<bool, SpecError> {
    match std::env::var(ENV_VAR) {
        Ok(spec) if !spec.trim().is_empty() => {
            configure_from_spec(&spec)?;
            Ok(true)
        }
        _ => Ok(false),
    }
}

#[cfg(feature = "inject")]
mod registry {
    use super::{catalog, spec, Fault, SpecError};
    use std::collections::HashMap;
    use std::sync::Mutex;

    struct FailpointState {
        terms: Vec<spec::Term>,
        hits: u64,
    }

    static REGISTRY: Mutex<Option<HashMap<String, FailpointState>>> = Mutex::new(None);

    pub fn configure_from_spec(text: &str) -> Result<(), SpecError> {
        let entries = spec::parse_spec(text)?;
        for e in &entries {
            if !catalog::is_registered(&e.name) {
                return Err(SpecError::UnknownFailpoint(e.name.clone()));
            }
        }
        let mut map = HashMap::new();
        for e in entries {
            map.insert(
                e.name.clone(),
                FailpointState {
                    terms: e.terms,
                    hits: 0,
                },
            );
        }
        *REGISTRY.lock().expect("failpoint registry poisoned") = Some(map);
        Ok(())
    }

    pub fn clear() {
        *REGISTRY.lock().expect("failpoint registry poisoned") = None;
    }

    pub fn eval(name: &str) -> Option<Fault> {
        let mut guard = REGISTRY.lock().expect("failpoint registry poisoned");
        let state = guard.as_mut()?.get_mut(name)?;
        let hit = state.hits;
        state.hits += 1;
        let mut remaining = hit;
        for term in &state.terms {
            match term.count {
                None => return term.action.to_fault(),
                Some(c) if remaining < c => return term.action.to_fault(),
                Some(c) => remaining -= c,
            }
        }
        None // schedule exhausted: off
    }

    pub fn hits(name: &str) -> u64 {
        REGISTRY
            .lock()
            .expect("failpoint registry poisoned")
            .as_ref()
            .and_then(|m| m.get(name))
            .map_or(0, |s| s.hits)
    }
}

#[cfg(feature = "inject")]
pub use active::*;

#[cfg(feature = "inject")]
mod active {
    use super::{registry, Fault, SpecError};

    /// Replaces the active failpoint configuration with `spec`.
    ///
    /// # Errors
    ///
    /// Returns [`SpecError`] on a malformed spec or an unregistered
    /// failpoint name.
    pub fn configure_from_spec(spec: &str) -> Result<(), SpecError> {
        if spec.trim().is_empty() {
            registry::clear();
            return Ok(());
        }
        registry::configure_from_spec(spec)
    }

    /// Removes every configured failpoint (all evaluations return
    /// `None` again) and resets hit counters.
    pub fn clear() {
        registry::clear();
    }

    /// Evaluates the named failpoint against its configured schedule,
    /// consuming one hit. Unconfigured failpoints return `None`.
    pub fn eval(name: &str) -> Option<Fault> {
        registry::eval(name)
    }

    /// How many times the named failpoint has been evaluated since it
    /// was configured (0 when unconfigured) — for tests and reports.
    pub fn hits(name: &str) -> u64 {
        registry::hits(name)
    }
}

#[cfg(not(feature = "inject"))]
pub use inert::*;

#[cfg(not(feature = "inject"))]
mod inert {
    use super::{Fault, SpecError};

    /// Inert stub: a non-empty spec fails with [`SpecError::Disabled`]
    /// so a chaos run against a non-chaos build is loud, not silent.
    pub fn configure_from_spec(spec: &str) -> Result<(), SpecError> {
        if spec.trim().is_empty() {
            Ok(())
        } else {
            Err(SpecError::Disabled)
        }
    }

    /// Inert stub: nothing to clear.
    pub fn clear() {}

    /// Inert stub: always `None`; inlines to nothing.
    #[inline(always)]
    pub fn eval(_name: &str) -> Option<Fault> {
        None
    }

    /// Inert stub: always 0.
    pub fn hits(_name: &str) -> u64 {
        0
    }
}

// Keep the spec types referenced from both cfg arms.
impl ActionSpec {
    // Only the live registry schedules faults; the inert build still
    // parses (for validate_spec) but never converts.
    #[cfg_attr(not(feature = "inject"), allow(dead_code))]
    fn to_fault(&self) -> Option<Fault> {
        match self {
            ActionSpec::Off => None,
            ActionSpec::Return(kind) => Some(Fault::Error(*kind)),
            ActionSpec::Panic(msg) => Some(Fault::Panic(msg.clone())),
            ActionSpec::Delay(ms) => Some(Fault::Delay(*ms)),
            ActionSpec::TornWrite(n) => Some(Fault::TornWrite(*n)),
            ActionSpec::CorruptBytes(n) => Some(Fault::CorruptBytes(*n)),
            ActionSpec::RaiseInterrupt => Some(Fault::RaiseInterrupt),
        }
    }
}

/// Parses a spec without touching the registry — validation for CLIs
/// and tests, available with or without the `inject` feature.
///
/// # Errors
///
/// Returns [`SpecError`] on malformed syntax or an unregistered
/// failpoint name.
pub fn validate_spec(text: &str) -> Result<(), SpecError> {
    for entry in spec::parse_spec(text)? {
        let Entry { name, .. } = entry;
        if !catalog::is_registered(&name) {
            return Err(SpecError::UnknownFailpoint(name));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corrupt_prefix_flips_and_clamps() {
        let mut buf = vec![b'{', b'"', b's'];
        corrupt_prefix(&mut buf, 2);
        assert_eq!(buf, vec![b'{' ^ 0xFF, b'"' ^ 0xFF, b's']);
        corrupt_prefix(&mut buf, 100); // clamped, no panic
    }

    #[test]
    fn validate_spec_checks_names_in_both_builds() {
        assert!(validate_spec("obs::fsio::rename=return(enospc)").is_ok());
        assert!(matches!(
            validate_spec("no::such::point=panic"),
            Err(SpecError::UnknownFailpoint(_))
        ));
    }

    #[test]
    fn error_faults_map_to_io_errors() {
        let e = Fault::Error(IoKind::Enospc).to_io_error("here").unwrap();
        assert_eq!(e.kind(), std::io::ErrorKind::StorageFull);
        assert!(e.to_string().contains("here"));
        assert!(Fault::RaiseInterrupt.to_io_error("x").is_none());
        let torn = Fault::TornWrite(3).to_io_error("w").unwrap();
        assert_eq!(torn.kind(), std::io::ErrorKind::Interrupted);
    }

    #[cfg(feature = "inject")]
    mod live {
        use super::super::*;
        use std::sync::{Mutex, MutexGuard};

        /// The registry is process-global; serialize tests that touch it.
        fn serial() -> MutexGuard<'static, ()> {
            static GUARD: Mutex<()> = Mutex::new(());
            GUARD.lock().unwrap_or_else(|e| e.into_inner())
        }

        #[test]
        fn schedules_consume_terms_in_order_then_fall_off() {
            let _g = serial();
            configure_from_spec("des::replication::body=2*off->1*panic(boom)->1*delay(3)").unwrap();
            assert_eq!(eval("des::replication::body"), None);
            assert_eq!(eval("des::replication::body"), None);
            assert_eq!(
                eval("des::replication::body"),
                Some(Fault::Panic("boom".into()))
            );
            assert_eq!(eval("des::replication::body"), Some(Fault::Delay(3)));
            assert_eq!(eval("des::replication::body"), None, "exhausted => off");
            assert_eq!(hits("des::replication::body"), 5);
            clear();
            assert_eq!(eval("des::replication::body"), None);
        }

        #[test]
        fn uncounted_terminal_term_repeats_forever() {
            let _g = serial();
            configure_from_spec("obs::fsio::sync=1*off->return(interrupted)").unwrap();
            assert_eq!(eval("obs::fsio::sync"), None);
            for _ in 0..10 {
                assert_eq!(
                    eval("obs::fsio::sync"),
                    Some(Fault::Error(IoKind::Interrupted))
                );
            }
            clear();
        }

        #[test]
        fn configure_rejects_unknown_names_and_bad_syntax() {
            let _g = serial();
            assert!(matches!(
                configure_from_spec("no::such::point=panic"),
                Err(SpecError::UnknownFailpoint(_))
            ));
            assert!(configure_from_spec("obs::fsio::sync=explode").is_err());
            assert!(configure_from_spec("obs::fsio::sync").is_err());
            // A failed configure leaves the registry unchanged.
            configure_from_spec("obs::fsio::sync=1*return").unwrap();
            assert!(configure_from_spec("garbage").is_err());
            assert!(eval("obs::fsio::sync").is_some());
            clear();
        }

        #[test]
        fn evaluation_is_deterministic_across_reconfigure() {
            let _g = serial();
            let spec = "des::checkpoint::save=1*corrupt-bytes(4)->2*torn-write(10)";
            let run = || {
                configure_from_spec(spec).unwrap();
                let seq: Vec<Option<Fault>> =
                    (0..5).map(|_| eval("des::checkpoint::save")).collect();
                clear();
                seq
            };
            assert_eq!(run(), run());
        }

        #[test]
        fn empty_spec_clears() {
            let _g = serial();
            configure_from_spec("obs::fsio::sync=return").unwrap();
            configure_from_spec("  ").unwrap();
            assert_eq!(eval("obs::fsio::sync"), None);
        }
    }
}
