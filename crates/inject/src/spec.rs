//! Parser for the `AHS_FAILPOINTS` spec grammar.
//!
//! ```text
//! spec     := entry (';' entry)*
//! entry    := name '=' term ('->' term)*
//! term     := [count '*'] action
//! action   := 'off' | 'return'[(kind)] | 'panic'[(msg)] | 'delay'(ms)
//!           | 'torn-write'(n) | 'corrupt-bytes'[(n)] | 'raise-interrupt'
//! ```

use std::fmt;

/// Error kinds an injected IO failure can carry, a deliberately small
/// vocabulary spanning both transient kinds (the retry layer should
/// absorb) and permanent ones (it must not).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum IoKind {
    Enospc,
    Interrupted,
    WouldBlock,
    TimedOut,
    Busy,
    InvalidInput,
    NotFound,
    PermissionDenied,
    BrokenPipe,
    Other,
}

impl IoKind {
    /// The `std::io::ErrorKind` this injects.
    pub fn to_error_kind(self) -> std::io::ErrorKind {
        use std::io::ErrorKind as K;
        match self {
            IoKind::Enospc => K::StorageFull,
            IoKind::Interrupted => K::Interrupted,
            IoKind::WouldBlock => K::WouldBlock,
            IoKind::TimedOut => K::TimedOut,
            IoKind::Busy => K::ResourceBusy,
            IoKind::InvalidInput => K::InvalidInput,
            IoKind::NotFound => K::NotFound,
            IoKind::PermissionDenied => K::PermissionDenied,
            IoKind::BrokenPipe => K::BrokenPipe,
            IoKind::Other => K::Other,
        }
    }

    /// The spec-syntax spelling of this kind.
    pub fn as_str(self) -> &'static str {
        match self {
            IoKind::Enospc => "enospc",
            IoKind::Interrupted => "interrupted",
            IoKind::WouldBlock => "wouldblock",
            IoKind::TimedOut => "timedout",
            IoKind::Busy => "busy",
            IoKind::InvalidInput => "invalid-input",
            IoKind::NotFound => "not-found",
            IoKind::PermissionDenied => "permission-denied",
            IoKind::BrokenPipe => "broken-pipe",
            IoKind::Other => "other",
        }
    }

    fn parse(s: &str) -> Option<Self> {
        Some(match s {
            "enospc" => IoKind::Enospc,
            "interrupted" => IoKind::Interrupted,
            "wouldblock" => IoKind::WouldBlock,
            "timedout" => IoKind::TimedOut,
            "busy" => IoKind::Busy,
            "invalid-input" => IoKind::InvalidInput,
            "not-found" => IoKind::NotFound,
            "permission-denied" => IoKind::PermissionDenied,
            "broken-pipe" => IoKind::BrokenPipe,
            "other" => IoKind::Other,
            _ => return None,
        })
    }
}

impl fmt::Display for IoKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// What a failpoint spec asks for (before hit-count scheduling).
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum ActionSpec {
    Off,
    Return(IoKind),
    Panic(String),
    Delay(u64),
    TornWrite(usize),
    CorruptBytes(usize),
    RaiseInterrupt,
}

/// One schedule term: `action` for the next `count` evaluations
/// (forever when `count` is `None`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct Term {
    pub(crate) count: Option<u64>,
    pub(crate) action: ActionSpec,
}

/// One parsed `name=schedule` entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct Entry {
    pub(crate) name: String,
    pub(crate) terms: Vec<Term>,
}

/// Why a failpoint spec was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SpecError {
    /// This build lacks the `inject` cargo feature; a non-empty spec
    /// would be silently ignored, so it is refused instead.
    Disabled,
    /// The spec names a failpoint absent from the static catalog.
    UnknownFailpoint(String),
    /// Syntax error, with the offending fragment and what was wrong.
    Parse {
        /// The entry or term that failed to parse.
        fragment: String,
        /// What was wrong with it.
        reason: String,
    },
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpecError::Disabled => write!(
                f,
                "failpoints requested but this binary was built without the `inject` feature \
                 (rebuild with `--features inject`)"
            ),
            SpecError::UnknownFailpoint(name) => write!(
                f,
                "unknown failpoint `{name}` (see `ahs_inject::catalog()` or docs/robustness.md \
                 for the registered names)"
            ),
            SpecError::Parse { fragment, reason } => {
                write!(f, "malformed failpoint spec at `{fragment}`: {reason}")
            }
        }
    }
}

impl std::error::Error for SpecError {}

fn parse_err(fragment: &str, reason: impl Into<String>) -> SpecError {
    SpecError::Parse {
        fragment: fragment.to_string(),
        reason: reason.into(),
    }
}

/// Splits `action(arg)` into `("action", Some("arg"))`.
fn split_arg(term: &str) -> Result<(&str, Option<&str>), SpecError> {
    match term.find('(') {
        None => Ok((term, None)),
        Some(open) => {
            let Some(inner) = term[open + 1..].strip_suffix(')') else {
                return Err(parse_err(term, "missing closing `)`"));
            };
            Ok((&term[..open], Some(inner)))
        }
    }
}

fn parse_action(text: &str) -> Result<ActionSpec, SpecError> {
    let (name, arg) = split_arg(text)?;
    let no_arg = |action: &'static str| match arg {
        None => Ok(()),
        Some(_) => Err(parse_err(text, format!("`{action}` takes no argument"))),
    };
    let required = |action: &'static str| {
        arg.ok_or_else(|| parse_err(text, format!("`{action}` requires an argument")))
    };
    match name {
        "off" => {
            no_arg("off")?;
            Ok(ActionSpec::Off)
        }
        "return" | "return-error" => match arg {
            None => Ok(ActionSpec::Return(IoKind::Other)),
            Some(kind) => IoKind::parse(kind)
                .map(ActionSpec::Return)
                .ok_or_else(|| parse_err(text, format!("unknown error kind `{kind}`"))),
        },
        "panic" => Ok(ActionSpec::Panic(
            arg.unwrap_or("injected panic").to_string(),
        )),
        "delay" => {
            let ms = required("delay")?;
            ms.parse()
                .map(ActionSpec::Delay)
                .map_err(|_| parse_err(text, format!("`{ms}` is not a millisecond count")))
        }
        "torn-write" => {
            let n = required("torn-write")?;
            n.parse()
                .map(ActionSpec::TornWrite)
                .map_err(|_| parse_err(text, format!("`{n}` is not a byte count")))
        }
        "corrupt-bytes" => match arg {
            None => Ok(ActionSpec::CorruptBytes(16)),
            Some(n) => n
                .parse()
                .map(ActionSpec::CorruptBytes)
                .map_err(|_| parse_err(text, format!("`{n}` is not a byte count"))),
        },
        "raise-interrupt" => {
            no_arg("raise-interrupt")?;
            Ok(ActionSpec::RaiseInterrupt)
        }
        other => Err(parse_err(text, format!("unknown action `{other}`"))),
    }
}

fn parse_term(text: &str) -> Result<Term, SpecError> {
    let text = text.trim();
    if text.is_empty() {
        return Err(parse_err(text, "empty schedule term"));
    }
    // `N*action` — but only when the prefix really is a count, so a
    // future action containing `*` is not misparsed.
    if let Some((head, tail)) = text.split_once('*') {
        if let Ok(count) = head.trim().parse::<u64>() {
            if count == 0 {
                return Err(parse_err(text, "term count must be >= 1"));
            }
            return Ok(Term {
                count: Some(count),
                action: parse_action(tail.trim())?,
            });
        }
    }
    Ok(Term {
        count: None,
        action: parse_action(text)?,
    })
}

/// Parses a full spec into entries. Purely syntactic — catalog
/// membership is checked by the caller.
pub(crate) fn parse_spec(text: &str) -> Result<Vec<Entry>, SpecError> {
    let mut entries = Vec::new();
    for raw in text.split(';') {
        let raw = raw.trim();
        if raw.is_empty() {
            continue;
        }
        let Some((name, schedule)) = raw.split_once('=') else {
            return Err(parse_err(raw, "expected `name=schedule`"));
        };
        let name = name.trim();
        if name.is_empty() {
            return Err(parse_err(raw, "empty failpoint name"));
        }
        let terms = schedule
            .split("->")
            .map(parse_term)
            .collect::<Result<Vec<_>, _>>()?;
        entries.push(Entry {
            name: name.to_string(),
            terms,
        });
    }
    Ok(entries)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_multi_entry_multi_term_specs() {
        let entries = parse_spec(
            "obs::fsio::sync=2*off->1*return(enospc); \
             des::replication::body=panic(boom)",
        )
        .unwrap();
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[0].name, "obs::fsio::sync");
        assert_eq!(
            entries[0].terms,
            vec![
                Term {
                    count: Some(2),
                    action: ActionSpec::Off
                },
                Term {
                    count: Some(1),
                    action: ActionSpec::Return(IoKind::Enospc)
                },
            ]
        );
        assert_eq!(
            entries[1].terms,
            vec![Term {
                count: None,
                action: ActionSpec::Panic("boom".into())
            }]
        );
    }

    #[test]
    fn parses_every_action_and_defaults() {
        let one = |s: &str| parse_spec(&format!("x={s}")).unwrap()[0].terms[0].clone();
        assert_eq!(one("off").action, ActionSpec::Off);
        assert_eq!(one("return").action, ActionSpec::Return(IoKind::Other));
        assert_eq!(
            one("return-error(not-found)").action,
            ActionSpec::Return(IoKind::NotFound)
        );
        assert_eq!(
            one("panic").action,
            ActionSpec::Panic("injected panic".into())
        );
        assert_eq!(one("delay(250)").action, ActionSpec::Delay(250));
        assert_eq!(one("torn-write(7)").action, ActionSpec::TornWrite(7));
        assert_eq!(one("corrupt-bytes").action, ActionSpec::CorruptBytes(16));
        assert_eq!(one("corrupt-bytes(3)").action, ActionSpec::CorruptBytes(3));
        assert_eq!(one("raise-interrupt").action, ActionSpec::RaiseInterrupt);
    }

    #[test]
    fn rejects_malformed_fragments() {
        for bad in [
            "x",
            "=panic",
            "x=",
            "x=explode",
            "x=delay",
            "x=delay(abc)",
            "x=0*panic",
            "x=return(diskful)",
            "x=off(1)",
            "x=delay(5",
            "x=torn-write",
        ] {
            assert!(
                matches!(parse_spec(bad), Err(SpecError::Parse { .. })),
                "expected parse error for `{bad}`"
            );
        }
    }

    #[test]
    fn io_kinds_round_trip_and_map() {
        for kind in [
            IoKind::Enospc,
            IoKind::Interrupted,
            IoKind::WouldBlock,
            IoKind::TimedOut,
            IoKind::Busy,
            IoKind::InvalidInput,
            IoKind::NotFound,
            IoKind::PermissionDenied,
            IoKind::BrokenPipe,
            IoKind::Other,
        ] {
            assert_eq!(IoKind::parse(kind.as_str()), Some(kind));
        }
        assert_eq!(
            IoKind::Enospc.to_error_kind(),
            std::io::ErrorKind::StorageFull
        );
    }

    #[test]
    fn empty_and_whitespace_entries_are_skipped() {
        assert!(parse_spec("").unwrap().is_empty());
        assert!(parse_spec(" ;; ").unwrap().is_empty());
    }
}
