//! The static failpoint catalog.
//!
//! Every failpoint the workspace evaluates is declared here, so
//! configuration can reject typos and the chaos tier
//! (`crates/des/tests/chaos.rs`) can prove it swept *every* registered
//! point rather than merely the ones someone remembered.

/// One registered failpoint: where it lives and what it supports.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FailpointDesc {
    /// Registry name, as written in `AHS_FAILPOINTS`.
    pub name: &'static str,
    /// Crate/layer evaluating it.
    pub layer: &'static str,
    /// Actions this site interprets (every site honors `off`, `delay`,
    /// and `panic`; this lists the site-specific ones too).
    pub actions: &'static [&'static str],
    /// The operation the evaluation guards.
    pub site: &'static str,
}

/// All registered failpoints. Order is the sweep order of the chaos
/// tier and the catalog table in docs/robustness.md.
pub const CATALOG: &[FailpointDesc] = &[
    FailpointDesc {
        name: "obs::fsio::create",
        layer: "ahs-obs",
        actions: &["return(kind)"],
        site: "creating the temp file in atomic_write",
    },
    FailpointDesc {
        name: "obs::fsio::write",
        layer: "ahs-obs",
        actions: &["return(kind)", "torn-write(n)"],
        site: "writing the payload to the temp file",
    },
    FailpointDesc {
        name: "obs::fsio::sync",
        layer: "ahs-obs",
        actions: &["return(kind)"],
        site: "fsync of the temp file before publication",
    },
    FailpointDesc {
        name: "obs::fsio::rename",
        layer: "ahs-obs",
        actions: &["return(kind)"],
        site: "the rename that publishes the temp file",
    },
    FailpointDesc {
        name: "obs::fsio::dir-sync",
        layer: "ahs-obs",
        actions: &["return(kind)"],
        site: "best-effort fsync of the parent directory after rename",
    },
    FailpointDesc {
        name: "obs::progress::emit",
        layer: "ahs-obs",
        actions: &["return(kind)"],
        site: "writing one JSON-lines telemetry event to the sink",
    },
    FailpointDesc {
        name: "des::checkpoint::save",
        layer: "ahs-des",
        actions: &["return(kind)", "torn-write(n)", "corrupt-bytes(n)"],
        site: "serializing + persisting a study checkpoint",
    },
    FailpointDesc {
        name: "des::checkpoint::load",
        layer: "ahs-des",
        actions: &["return(kind)", "corrupt-bytes(n)"],
        site: "reading + parsing a checkpoint on resume",
    },
    FailpointDesc {
        name: "des::replication::body",
        layer: "ahs-des",
        actions: &["panic(msg)", "delay(ms)", "return(kind)"],
        site: "one replication body, inside catch_unwind",
    },
    FailpointDesc {
        name: "des::replication::chunk",
        layer: "ahs-des",
        actions: &["raise-interrupt", "delay(ms)"],
        site: "a worker claiming its next chunk of replications",
    },
    FailpointDesc {
        name: "des::sim::step",
        layer: "ahs-des",
        actions: &["delay(ms)", "panic(msg)"],
        site: "one event of the simulation inner loop",
    },
    FailpointDesc {
        name: "serve::accept",
        layer: "ahs-serve",
        actions: &["return(kind)", "delay(ms)", "panic(msg)"],
        site: "handing one accepted connection to its handler thread",
    },
    FailpointDesc {
        name: "serve::job::enqueue",
        layer: "ahs-serve",
        actions: &["return(kind)", "delay(ms)"],
        site: "admitting a validated job into the bounded queue",
    },
    FailpointDesc {
        name: "serve::worker::spawn",
        layer: "ahs-serve",
        actions: &["panic(msg)", "return(kind)", "delay(ms)"],
        site: "a supervised worker starting one job attempt",
    },
    FailpointDesc {
        name: "serve::response::write",
        layer: "ahs-serve",
        actions: &["return(kind)", "delay(ms)"],
        site: "writing the HTTP response for a handled request",
    },
    FailpointDesc {
        name: "serve::cache::insert",
        layer: "ahs-serve",
        actions: &["return(kind)", "delay(ms)"],
        site: "publishing a freshly compiled model into the shared cache",
    },
    FailpointDesc {
        name: "serve::worker::exec",
        layer: "ahs-serve-worker",
        actions: &["return(kind)", "panic(msg)", "delay(ms)"],
        site: "re-exec of an isolated worker process for one job attempt",
    },
    FailpointDesc {
        name: "serve::worker::heartbeat",
        layer: "ahs-serve-worker",
        actions: &["return(kind)", "delay(ms)"],
        site: "one heartbeat write inside an isolated worker process",
    },
    FailpointDesc {
        name: "serve::worker::reap",
        layer: "ahs-serve-worker",
        actions: &["return(kind)", "delay(ms)"],
        site: "reaping an exited worker and reading its outcome document",
    },
];

/// The full catalog, in sweep order.
pub fn catalog() -> &'static [FailpointDesc] {
    CATALOG
}

/// Whether `name` is a registered failpoint.
pub fn is_registered(name: &str) -> bool {
    CATALOG.iter().any(|fp| fp.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_names_are_unique_and_namespaced() {
        let mut seen = std::collections::HashSet::new();
        for fp in catalog() {
            assert!(seen.insert(fp.name), "duplicate failpoint {}", fp.name);
            assert!(
                fp.name.contains("::"),
                "failpoint {} should be layer-namespaced",
                fp.name
            );
            assert!(!fp.actions.is_empty());
            assert!(is_registered(fp.name));
        }
        assert!(!is_registered("obs::fsio::"));
    }
}
