//! Integration tests of the Rep/Join-style composition operators:
//! nested scopes, shared-state semantics, and a miniature composed
//! dependability model in the style of the paper's Figure 9.

use ahs_san::{Delay, Marking, SanBuilder};
use rand::rngs::SmallRng;
use rand::SeedableRng;

#[test]
fn nested_joins_qualify_names_hierarchically() {
    let mut b = SanBuilder::new("nested");
    b.join("outer", |b| {
        b.place("p")?;
        b.join("inner", |b| {
            b.place("p")?;
            Ok(())
        })?;
        b.replicate("leaf", 2, |b, _| {
            b.place("p")?;
            Ok(())
        })
    })
    .unwrap();
    assert!(b.find_place("outer.p").is_some());
    assert!(b.find_place("outer.inner.p").is_some());
    assert!(b.find_place("outer.leaf[0].p").is_some());
    assert!(b.find_place("outer.leaf[1].p").is_some());
    assert!(b.find_place("p").is_none());
}

#[test]
fn shared_places_ignore_scope() {
    let mut b = SanBuilder::new("shared");
    let mut ids = Vec::new();
    b.join("a", |b| {
        ids.push(b.shared_place("bus")?);
        b.join("deep", |b| {
            ids.push(b.shared_place("bus")?);
            Ok(())
        })
    })
    .unwrap();
    ids.push(b.shared_place("bus").unwrap());
    assert!(ids.windows(2).all(|w| w[0] == w[1]));
}

#[test]
fn replicas_interact_only_through_shared_places() {
    // Three replicated producers feed one shared buffer; a consumer
    // drains it. Token conservation across the composition.
    let mut b = SanBuilder::new("prodcons");
    let buffer = b.shared_place("buffer").unwrap();
    b.replicate("producer", 3, |b, _| {
        let idle = b.place_with_tokens("idle", 1).unwrap();
        let busy = b.place("busy").unwrap();
        b.timed_activity("start", Delay::exponential(2.0))?
            .input_place(idle)
            .output_place(busy)
            .build()?;
        b.timed_activity("emit", Delay::exponential(5.0))?
            .input_place(busy)
            .output_place(idle)
            .output_place(buffer)
            .build()?;
        Ok(())
    })
    .unwrap();
    let consumed = b.place("consumed").unwrap();
    b.timed_activity("consume", Delay::exponential(10.0))
        .unwrap()
        .input_place(buffer)
        .output_place(consumed)
        .build()
        .unwrap();
    let model = b.build().unwrap();

    let mut rng = SmallRng::seed_from_u64(5);
    let mut m = model.initial_marking().clone();
    let mut emitted = 0u64;
    for _ in 0..500 {
        let enabled = model.enabled_timed(&m);
        if enabled.is_empty() {
            break;
        }
        let a = enabled[emitted as usize % enabled.len()];
        if model.activity(a).name().ends_with("emit") {
            emitted += 1;
        }
        let case = model.select_case(a, &m, &mut rng).unwrap();
        model.fire(a, case, &mut m);
        // Invariant: everything emitted is in the buffer or consumed.
        assert_eq!(m.tokens(buffer) + m.tokens(consumed), emitted);
        // Each producer still holds exactly one token across idle/busy.
        for i in 0..3 {
            let idle = model.find_place(&format!("producer[{i}].idle")).unwrap();
            let busy = model.find_place(&format!("producer[{i}].busy")).unwrap();
            assert_eq!(m.tokens(idle) + m.tokens(busy), 1);
        }
    }
    assert!(
        emitted > 50,
        "simulation should make progress, got {emitted}"
    );
}

#[test]
fn figure9_style_composition_shape() {
    // Rep(One_vehicle, 2n) ⋈ Severity ⋈ Dynamicity: checks that the
    // composed structure has the expected element counts and that
    // shared severity counters are visible to every replica.
    let n = 3usize;
    let mut b = SanBuilder::new("figure9");
    let class_a = b.shared_place("class_A").unwrap();
    let ko_total = b.shared_place("KO_total").unwrap();

    b.replicate("one_vehicle", 2 * n, |b, _| {
        let ok = b.place_with_tokens("cc", 1)?;
        let sm = b.place("sm")?;
        let a = class_a;
        let og = b.output_gate("count", move |m: &mut Marking| m.add_tokens(a, 1));
        b.timed_activity("L", Delay::exponential(1e-3))?
            .input_place(ok)
            .output_place(sm)
            .output_gate(og)
            .build()?;
        Ok(())
    })
    .unwrap();

    let gate = b.predicate_gate("catastrophic", move |m: &Marking| {
        m.tokens(class_a) >= 2 && !m.is_marked(ko_total)
    });
    b.instant_activity("to_KO", 10, 1.0)
        .unwrap()
        .input_gate(gate)
        .output_place(ko_total)
        .build()
        .unwrap();

    let model = b.build().unwrap();
    assert_eq!(model.num_activities(), 2 * n + 1);
    // Two failures anywhere trip the shared detector.
    let mut m = model.initial_marking().clone();
    let l0 = model.find_activity("one_vehicle[0].L").unwrap();
    let l4 = model.find_activity("one_vehicle[4].L").unwrap();
    let mut rng = SmallRng::seed_from_u64(0);
    model.fire(l0, 0, &mut m);
    model.stabilize(&mut m, &mut rng).unwrap();
    assert!(!m.is_marked(ko_total));
    model.fire(l4, 0, &mut m);
    model.stabilize(&mut m, &mut rng).unwrap();
    assert!(m.is_marked(ko_total));
}
