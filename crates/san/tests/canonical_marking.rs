//! Property tests of the canonical `Marking` equality/hash contract:
//! markings reaching the same per-place values through different
//! construction orders must compare equal, hash equal under `std`
//! hashers, and produce identical stable fingerprints.

use std::hash::{DefaultHasher, Hash, Hasher};

use ahs_san::{Delay, Marking, PlaceId, SanBuilder, SanModel};
use proptest::prelude::*;

const SIMPLE: usize = 4;
const EXT: usize = 2;
const EXT_LEN: usize = 3;

/// A small model with `SIMPLE` simple places and `EXT` extended places,
/// plus the handle vectors needed to address them from outside the
/// crate.
fn model() -> (SanModel, Vec<PlaceId>, Vec<PlaceId>) {
    let mut b = SanBuilder::new("canonical");
    let simple: Vec<PlaceId> = (0..SIMPLE)
        .map(|i| b.place(&format!("p{i}")).unwrap())
        .collect();
    let ext: Vec<PlaceId> = (0..EXT)
        .map(|i| b.extended_place(&format!("x{i}"), EXT_LEN).unwrap())
        .collect();
    // The builder rejects activity-free models; the tests only mutate
    // markings directly, so any activity will do.
    b.timed_activity("tick", Delay::exponential(1.0))
        .unwrap()
        .input_place(simple[0])
        .output_place(simple[0])
        .build()
        .unwrap();
    (b.build().unwrap(), simple, ext)
}

/// One write against a marking; a sequence of these is a construction
/// order.
#[derive(Debug, Clone)]
enum Op {
    SetTokens { place: usize, n: u64 },
    SetCell { place: usize, idx: usize, v: i64 },
}

fn apply(m: &mut Marking, simple: &[PlaceId], ext: &[PlaceId], op: &Op) {
    match *op {
        Op::SetTokens { place, n } => m.set_tokens(simple[place], n),
        Op::SetCell { place, idx, v } => m.array_mut(ext[place])[idx] = v,
    }
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0..SIMPLE, 0u64..100).prop_map(|(place, n)| Op::SetTokens { place, n }),
        (0..EXT, 0..EXT_LEN, -50i64..50).prop_map(|(place, idx, v)| Op::SetCell { place, idx, v }),
    ]
}

fn std_hash(m: &Marking) -> u64 {
    let mut h = DefaultHasher::new();
    m.hash(&mut h);
    h.finish()
}

/// The canonical per-place values, independent of representation.
fn canonical(m: &Marking, model: &SanModel) -> Vec<ahs_san::PlaceValue> {
    model.place_ids().map(|p| m.value(p)).collect()
}

proptest! {
    /// Applying the same ops in two different interleavings yields
    /// markings that agree on values iff they agree on Eq/Hash/
    /// fingerprint.
    #[test]
    fn construction_order_is_irrelevant(
        ops in prop::collection::vec(op_strategy(), 0..24),
        shuffle_seed in any::<u64>(),
    ) {
        let (model, simple, ext) = model();
        let mut a = model.initial_marking().clone();
        for op in &ops {
            apply(&mut a, &simple, &ext, op);
        }
        // A deterministic pseudo-shuffle of the op order. Later writes
        // to the same cell win, so only reorderings that preserve the
        // final value per cell are expected to compare equal — we check
        // against the canonical value vector rather than assuming.
        let mut shuffled = ops.clone();
        let mut s = shuffle_seed;
        for i in (1..shuffled.len()).rev() {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            shuffled.swap(i, (s >> 33) as usize % (i + 1));
        }
        let mut b = model.initial_marking().clone();
        for op in &shuffled {
            apply(&mut b, &simple, &ext, op);
        }
        if canonical(&a, &model) == canonical(&b, &model) {
            prop_assert_eq!(&a, &b);
            prop_assert_eq!(std_hash(&a), std_hash(&b));
            prop_assert_eq!(a.fingerprint(), b.fingerprint());
        } else {
            prop_assert_ne!(&a, &b);
        }
    }

    /// Eq implies hash-equal and fingerprint-equal (replay identical
    /// writes against two fresh markings — always equal).
    #[test]
    fn equal_markings_hash_equal(ops in prop::collection::vec(op_strategy(), 0..24)) {
        let (model, simple, ext) = model();
        let mut a = model.initial_marking().clone();
        let mut b = model.initial_marking().clone();
        for op in &ops {
            apply(&mut a, &simple, &ext, op);
            apply(&mut b, &simple, &ext, op);
        }
        prop_assert_eq!(&a, &b);
        prop_assert_eq!(std_hash(&a), std_hash(&b));
        prop_assert_eq!(a.fingerprint(), b.fingerprint());
    }

    /// A single diverging write breaks equality and the fingerprint.
    #[test]
    fn diverging_write_breaks_equality(
        ops in prop::collection::vec(op_strategy(), 0..12),
        place in 0..SIMPLE,
    ) {
        let (model, simple, ext) = model();
        let mut a = model.initial_marking().clone();
        let mut b = model.initial_marking().clone();
        for op in &ops {
            apply(&mut a, &simple, &ext, op);
            apply(&mut b, &simple, &ext, op);
        }
        let bumped = a.tokens(simple[place]) + 1;
        b.set_tokens(simple[place], bumped);
        prop_assert_ne!(&a, &b);
        prop_assert_ne!(a.fingerprint(), b.fingerprint());
    }
}
