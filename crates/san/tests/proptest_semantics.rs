//! Property-based tests of the SAN execution semantics on randomly
//! generated token-ring and fork/join nets.

use ahs_san::{Delay, Marking, PlaceId, SanBuilder, SanModel};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Builds a ring of `n` places with one token at place 0 and timed
/// activities moving the token around the ring.
fn ring(n: usize) -> (SanModel, Vec<PlaceId>) {
    let mut b = SanBuilder::new("ring");
    let places: Vec<PlaceId> = (0..n)
        .map(|i| {
            if i == 0 {
                b.place_with_tokens(&format!("p{i}"), 1).unwrap()
            } else {
                b.place(&format!("p{i}")).unwrap()
            }
        })
        .collect();
    for i in 0..n {
        b.timed_activity(&format!("step{i}"), Delay::exponential(1.0 + i as f64))
            .unwrap()
            .input_place(places[i])
            .output_place(places[(i + 1) % n])
            .build()
            .unwrap();
    }
    (b.build().unwrap(), places)
}

fn total_tokens(m: &Marking, places: &[PlaceId]) -> u64 {
    places.iter().map(|&p| m.tokens(p)).sum()
}

proptest! {
    #[test]
    fn ring_conserves_tokens(n in 2usize..8, steps in 0usize..50, seed in any::<u64>()) {
        let (model, places) = ring(n);
        let mut marking = model.initial_marking().clone();
        let mut rng = SmallRng::seed_from_u64(seed);
        for _ in 0..steps {
            let enabled = model.enabled_timed(&marking);
            prop_assert_eq!(enabled.len(), 1, "exactly one activity enabled in a ring");
            let case = model.select_case(enabled[0], &marking, &mut rng).unwrap();
            model.fire(enabled[0], case, &mut marking);
            prop_assert_eq!(total_tokens(&marking, &places), 1);
        }
    }

    #[test]
    fn enabled_activities_have_satisfied_arcs(n in 2usize..8, steps in 0usize..30, seed in any::<u64>()) {
        let (model, _) = ring(n);
        let mut marking = model.initial_marking().clone();
        let mut rng = SmallRng::seed_from_u64(seed);
        for _ in 0..steps {
            for &a in model.timed_activities() {
                if model.is_enabled(a, &marking) {
                    for (p, k) in model.activity(a).input_arcs() {
                        prop_assert!(marking.tokens(*p) >= *k);
                    }
                }
            }
            let enabled = model.enabled_timed(&marking);
            let case = model.select_case(enabled[0], &marking, &mut rng).unwrap();
            model.fire(enabled[0], case, &mut marking);
        }
    }

    #[test]
    fn stable_successor_probabilities_sum_to_one(
        split in 1u32..10,
        seed in any::<u64>(),
    ) {
        // A fork: src -> instantaneous with `split+1` equally likely
        // cases, each to a distinct sink.
        let mut b = SanBuilder::new("fork");
        let src = b.place_with_tokens("src", 1).unwrap();
        let sinks: Vec<PlaceId> = (0..=split)
            .map(|i| b.place(&format!("s{i}")).unwrap())
            .collect();
        let p = 1.0 / f64::from(split + 1);
        let mut ab = b.instant_activity("fork", 0, 1.0).unwrap().input_place(src);
        for (i, &s) in sinks.iter().enumerate() {
            // Make the last case absorb rounding error so constants sum to 1.
            let prob = if i == sinks.len() - 1 {
                1.0 - p * split as f64
            } else {
                p
            };
            ab = ab.case(prob).output_place(s);
        }
        ab.build().unwrap();
        let model = b.build().unwrap();

        let succ = model.stable_successors(model.initial_marking()).unwrap();
        prop_assert_eq!(succ.len(), sinks.len());
        let total: f64 = succ.iter().map(|(_, pr)| pr).sum();
        prop_assert!((total - 1.0).abs() < 1e-9);

        // Randomized stabilization must land in one of the enumerated
        // stable markings.
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut m = model.initial_marking().clone();
        model.stabilize(&mut m, &mut rng).unwrap();
        prop_assert!(succ.iter().any(|(s, _)| *s == m));
    }

    #[test]
    fn exponential_samples_are_positive_and_finite(rate in 1e-6f64..1e6, seed in any::<u64>()) {
        let mut b = SanBuilder::new("single");
        let p = b.place_with_tokens("p", 1).unwrap();
        b.timed_activity("a", Delay::exponential(rate))
            .unwrap()
            .input_place(p)
            .build()
            .unwrap();
        let model = b.build().unwrap();
        let a = model.find_activity("a").unwrap();
        let marking = model.initial_marking();
        prop_assert_eq!(model.exponential_rate(a, marking), Some(rate));

        let mut rng = SmallRng::seed_from_u64(seed);
        if let ahs_san::Timing::Timed(d) = model.activity(a).timing() {
            for _ in 0..20 {
                let s = d.sample(marking, &mut rng);
                prop_assert!(s.is_finite() && s >= 0.0);
            }
        } else {
            prop_assert!(false, "expected timed activity");
        }
    }
}
