//! Incremental enablement must be observationally identical to a full
//! rescan: same markings, same enabledness flags, same instantaneous
//! cascades, same RNG consumption — on randomly generated sound models
//! driven through thousands of random firings.
//!
//! The incremental path re-evaluates only `affects`-listed activities
//! after each firing; the full-rescan path (the fallback used when a
//! gate lacks a `touches` declaration) recomputes everything. Both are
//! run in lock-step here against independent markings and caches.

use ahs_san::{ActivityId, Delay, Marking, SanBuilder, SanModel};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Deterministic structure source so a single `u64` seed describes a
/// whole model and firing sequence.
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 33
    }

    fn below(&mut self, bound: u64) -> u64 {
        self.next() % bound
    }
}

/// Builds a random *sound* SAN: every gate declares its `touches`
/// honestly, so the dependency graph is trusted and the incremental
/// path is actually exercised (an unsound model would silently compare
/// the fallback against itself).
fn random_sound_model(seed: u64) -> SanModel {
    let mut r = Lcg(seed ^ 0x5851f42d4c957f2d);
    let mut b = SanBuilder::new("incr");

    let n_places = 3 + r.below(4) as usize;
    let places: Vec<_> = (0..n_places)
        .map(|i| {
            b.place_with_tokens(&format!("p{i}"), r.below(3))
                .expect("fresh names cannot clash")
        })
        .collect();
    let pick = {
        let places = places.clone();
        move |r: &mut Lcg| places[r.below(n_places as u64) as usize]
    };

    let n_timed = 2 + r.below(4) as usize;
    for i in 0..n_timed {
        // An honest enabling gate on some activities: watches one
        // place, bumps another, and declares both. Built before the
        // activity builder borrows `b`.
        let gate = (r.below(3) == 0).then(|| {
            let watched = pick(&mut r);
            let bumped = pick(&mut r);
            b.input_gate_touching(
                &format!("g{i}"),
                [watched, bumped],
                move |m| m.tokens(watched) < 2,
                move |m| m.add_tokens(bumped, 1),
            )
        });
        let input = pick(&mut r);
        let mut ab = b
            .timed_activity(&format!("t{i}"), Delay::exponential(1.0))
            .expect("fresh names cannot clash");
        ab = ab.input_place(input);
        if let Some(gate) = gate {
            ab = ab.input_gate(gate);
        }
        if r.below(3) == 0 {
            // A valid two-way case split.
            ab = ab
                .case(0.3)
                .output_place(pick(&mut r))
                .case(0.7)
                .output_place(pick(&mut r));
        } else {
            ab = ab.output_place(pick(&mut r));
        }
        ab.build().expect("random timed activity is well-formed");
    }

    if r.below(2) == 0 {
        // One or two instantaneous activities. Outputs differ from
        // inputs so a single activity cannot self-loop; a mutual cycle
        // is still possible and must surface as the same typed
        // livelock error on both paths.
        let n_inst = 1 + r.below(2);
        for i in 0..n_inst {
            let input = pick(&mut r);
            let mut output = pick(&mut r);
            if output == input {
                output = places[(input.index() + 1) % n_places];
            }
            b.instant_activity(&format!("i{i}"), r.below(2) as u32, 1.0 + r.below(3) as f64)
                .expect("fresh names cannot clash")
                .input_place(input)
                .output_place(output)
                .build()
                .expect("random instantaneous activity is well-formed");
        }
    }
    b.build().expect("random sound model builds")
}

/// Drives one model through up to `max_steps` random firings with an
/// incremental cache and a forced-full-rescan cache in lock-step,
/// asserting observational equivalence after every firing. Returns the
/// number of timed firings executed.
fn run_lockstep(seed: u64, max_steps: usize) -> usize {
    let model = random_sound_model(seed);
    assert!(
        model.dependency_graph().is_sound(),
        "generator must produce sound models (seed {seed})"
    );
    let mut r = Lcg(seed ^ 0x2545f4914f6cdd1d);

    let mut m_inc = model.initial_marking().clone();
    let mut m_full = m_inc.clone();
    let mut cache_inc = model.new_cache();
    let mut cache_full = model.new_cache();
    cache_full.force_full_rescan();
    assert!(!cache_inc.is_full_rescan());
    assert!(cache_full.is_full_rescan());
    model.prime_cache(&mut cache_inc, &m_inc);
    model.prime_cache(&mut cache_full, &m_full);

    let mut rng_inc = SmallRng::seed_from_u64(seed);
    let mut rng_full = SmallRng::seed_from_u64(seed);

    // The initial marking may be unstable.
    let s_inc = model.stabilize_cached(&mut m_inc, &mut rng_inc, &mut cache_inc);
    let s_full = model.stabilize_cached(&mut m_full, &mut rng_full, &mut cache_full);
    assert_eq!(s_inc.is_ok(), s_full.is_ok(), "seed {seed}");
    if s_inc.is_err() {
        return 0; // identical livelock on both paths
    }
    assert_equivalent(&model, &m_inc, &m_full, &cache_inc, &cache_full, seed);

    let mut steps = 0;
    for _ in 0..max_steps {
        let enabled: Vec<ActivityId> = model
            .timed_activities()
            .iter()
            .copied()
            .filter(|&a| cache_inc.is_enabled(a))
            .collect();
        if enabled.is_empty() {
            break; // absorbing marking
        }
        let a = enabled[r.below(enabled.len() as u64) as usize];
        let case_inc = model
            .select_case_cached(a, &m_inc, &mut rng_inc, &mut cache_inc)
            .expect("constant case split is valid");
        let case_full = model
            .select_case_cached(a, &m_full, &mut rng_full, &mut cache_full)
            .expect("constant case split is valid");
        assert_eq!(case_inc, case_full, "seed {seed}");

        model.fire_cached(a, case_inc, &mut m_inc, &mut cache_inc);
        model.fire_cached(a, case_full, &mut m_full, &mut cache_full);
        steps += 1;

        let s_inc = model.stabilize_cached(&mut m_inc, &mut rng_inc, &mut cache_inc);
        let s_full = model.stabilize_cached(&mut m_full, &mut rng_full, &mut cache_full);
        match (&s_inc, &s_full) {
            (Ok(n_inc), Ok(n_full)) => {
                assert_eq!(n_inc, n_full, "cascade lengths differ (seed {seed})");
                assert_eq!(
                    cache_inc.fired(),
                    cache_full.fired(),
                    "cascade sequences differ (seed {seed})"
                );
            }
            (Err(_), Err(_)) => return steps, // identical livelock
            _ => panic!("only one path livelocked (seed {seed})"),
        }
        assert_equivalent(&model, &m_inc, &m_full, &cache_inc, &cache_full, seed);

        // Both modes must report the same set of flipped timed slots to
        // the (hypothetical) event-queue reconciler.
        let changed_inc = cache_inc.changed_timed_sorted().to_vec();
        let changed_full = cache_full.changed_timed_sorted().to_vec();
        assert_eq!(changed_inc, changed_full, "seed {seed}");
        cache_inc.clear_changed_timed();
        cache_full.clear_changed_timed();
    }

    // Both paths must have consumed the RNG identically throughout.
    assert_eq!(
        rng_inc.random::<u64>(),
        rng_full.random::<u64>(),
        "RNG streams diverged (seed {seed})"
    );
    steps
}

fn assert_equivalent(
    model: &SanModel,
    m_inc: &Marking,
    m_full: &Marking,
    cache_inc: &ahs_san::EnablementCache,
    cache_full: &ahs_san::EnablementCache,
    seed: u64,
) {
    assert_eq!(m_inc, m_full, "markings diverged (seed {seed})");
    for (i, act) in model.activities().iter().enumerate() {
        let a = model
            .find_activity(act.name())
            .expect("every activity is findable");
        assert_eq!(a.index(), i);
        let truth = model.is_enabled(a, m_inc);
        assert_eq!(
            cache_inc.is_enabled(a),
            truth,
            "incremental cache wrong for `{}` (seed {seed})",
            act.name()
        );
        assert_eq!(
            cache_full.is_enabled(a),
            truth,
            "full-rescan cache wrong for `{}` (seed {seed})",
            act.name()
        );
    }
}

/// Deterministic bulk run: at least ten thousand random firings across
/// three hundred random models, every one checked for equivalence.
#[test]
fn ten_thousand_random_firings_agree() {
    let mut total = 0;
    for seed in 0..300 {
        total += run_lockstep(seed, 100);
    }
    assert!(
        total >= 10_000,
        "expected at least 10k firings, got {total}"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Arbitrary seeds: the lock-step equivalence holds for any model
    /// the generator can produce.
    #[test]
    fn incremental_matches_full_rescan(seed in any::<u64>()) {
        run_lockstep(seed, 80);
    }
}
