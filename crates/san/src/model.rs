//! The finalized SAN model and its execution semantics.

use std::collections::HashMap;

use rand::Rng;

use crate::activity::{Activity, ActivityId, Timing};
use crate::depgraph::DependencyGraph;
use crate::error::SanError;
use crate::gate::{InputGate, InputGateId, OutputGate, OutputGateId};
use crate::marking::Marking;
use crate::place::{PlaceDecl, PlaceId};

/// Maximum instantaneous firings in one stabilization cascade before the
/// model is declared livelocked.
pub(crate) const MAX_INSTANT_FIRINGS: usize = 100_000;

/// A finalized stochastic activity network.
///
/// Built by [`SanBuilder`](crate::SanBuilder). The model is immutable;
/// all state lives in [`Marking`] values, so a single model can be
/// simulated from many threads concurrently.
///
/// ## Firing semantics
///
/// An activity is *enabled* in a marking iff every input arc's place
/// holds at least the arc's token count and every attached input-gate
/// predicate holds. On completion, in order:
///
/// 1. input-arc tokens are removed;
/// 2. input-gate marking functions run (declaration order);
/// 3. a case is selected from the case distribution;
/// 4. the case's output arcs deposit tokens;
/// 5. the case's output-gate functions run (declaration order).
///
/// Instantaneous activities complete before any timed activity; among
/// enabled instantaneous activities the highest priority fires first,
/// ties broken proportionally to weight.
pub struct SanModel {
    name: String,
    places: Vec<PlaceDecl>,
    input_gates: Vec<InputGate>,
    output_gates: Vec<OutputGate>,
    activities: Vec<Activity>,
    initial: Marking,
    timed: Vec<ActivityId>,
    instantaneous: Vec<ActivityId>,
    depgraph: DependencyGraph,
    place_lookup: HashMap<String, usize>,
    activity_lookup: HashMap<String, usize>,
}

impl SanModel {
    pub(crate) fn new(
        name: String,
        places: Vec<PlaceDecl>,
        input_gates: Vec<InputGate>,
        output_gates: Vec<OutputGate>,
        activities: Vec<Activity>,
        initial: Marking,
    ) -> Self {
        let mut timed = Vec::new();
        let mut instantaneous = Vec::new();
        for (i, a) in activities.iter().enumerate() {
            if a.is_instantaneous() {
                instantaneous.push(ActivityId(i));
            } else {
                timed.push(ActivityId(i));
            }
        }
        let depgraph =
            DependencyGraph::build(&activities, &input_gates, &output_gates, places.len());
        let place_lookup = places
            .iter()
            .enumerate()
            .map(|(i, d)| (d.name.clone(), i))
            .collect();
        let activity_lookup = activities
            .iter()
            .enumerate()
            .map(|(i, a)| (a.name.clone(), i))
            .collect();
        SanModel {
            name,
            places,
            input_gates,
            output_gates,
            activities,
            initial,
            timed,
            instantaneous,
            depgraph,
            place_lookup,
            activity_lookup,
        }
    }

    /// The model's static dependency graph: declared read/write sets per
    /// activity and the derived `affects` relation used for incremental
    /// enablement (see the `enablement` module and `docs/performance.md`).
    pub fn dependency_graph(&self) -> &DependencyGraph {
        &self.depgraph
    }

    /// Model name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of places.
    pub fn num_places(&self) -> usize {
        self.places.len()
    }

    /// Number of activities.
    pub fn num_activities(&self) -> usize {
        self.activities.len()
    }

    /// Place declarations.
    pub fn places(&self) -> &[PlaceDecl] {
        &self.places
    }

    /// Handles of every place, in declaration order.
    pub fn place_ids(&self) -> impl Iterator<Item = PlaceId> + '_ {
        (0..self.places.len()).map(PlaceId)
    }

    /// The fully-qualified name of a place.
    ///
    /// # Panics
    ///
    /// Panics if the handle came from another model and is out of range.
    pub fn place_name(&self, p: PlaceId) -> &str {
        self.places[p.0].name()
    }

    /// All input gates, indexable by [`InputGateId`].
    pub fn input_gates(&self) -> &[InputGate] {
        &self.input_gates
    }

    /// All output gates, indexable by [`OutputGateId`].
    pub fn output_gates(&self) -> &[OutputGate] {
        &self.output_gates
    }

    /// The input gate behind a handle.
    ///
    /// # Panics
    ///
    /// Panics if the handle came from another model and is out of range.
    pub fn input_gate(&self, g: InputGateId) -> &InputGate {
        &self.input_gates[g.0]
    }

    /// The output gate behind a handle.
    ///
    /// # Panics
    ///
    /// Panics if the handle came from another model and is out of range.
    pub fn output_gate(&self, g: OutputGateId) -> &OutputGate {
        &self.output_gates[g.0]
    }

    /// All activities.
    pub fn activities(&self) -> &[Activity] {
        &self.activities
    }

    /// The activity behind a handle.
    ///
    /// # Panics
    ///
    /// Panics if the handle came from another model and is out of range.
    pub fn activity(&self, a: ActivityId) -> &Activity {
        &self.activities[a.0]
    }

    /// Timed activity handles.
    pub fn timed_activities(&self) -> &[ActivityId] {
        &self.timed
    }

    /// Instantaneous activity handles.
    pub fn instantaneous_activities(&self) -> &[ActivityId] {
        &self.instantaneous
    }

    /// The initial marking.
    pub fn initial_marking(&self) -> &Marking {
        &self.initial
    }

    /// Looks up a place handle by fully-qualified name (O(1)).
    pub fn find_place(&self, name: &str) -> Option<PlaceId> {
        self.place_lookup.get(name).map(|&i| PlaceId(i))
    }

    /// Looks up an activity handle by fully-qualified name (O(1)).
    pub fn find_activity(&self, name: &str) -> Option<ActivityId> {
        self.activity_lookup.get(name).map(|&i| ActivityId(i))
    }

    /// Whether activity `a` is enabled in `marking`.
    pub fn is_enabled(&self, a: ActivityId, marking: &Marking) -> bool {
        let act = &self.activities[a.0];
        act.input_arcs.iter().all(|(p, n)| marking.tokens(*p) >= *n)
            && act
                .input_gates
                .iter()
                .all(|g| self.input_gates[g.0].holds(marking))
    }

    /// All enabled timed activities.
    pub fn enabled_timed(&self, marking: &Marking) -> Vec<ActivityId> {
        self.timed
            .iter()
            .copied()
            .filter(|a| self.is_enabled(*a, marking))
            .collect()
    }

    /// Enabled instantaneous activities restricted to the highest
    /// enabled priority level (the set eligible to fire next).
    pub fn enabled_instantaneous(&self, marking: &Marking) -> Vec<ActivityId> {
        let mut best: Option<u32> = None;
        let mut out = Vec::new();
        for &a in &self.instantaneous {
            if !self.is_enabled(a, marking) {
                continue;
            }
            let Timing::Instantaneous { priority, .. } = self.activities[a.0].timing else {
                unreachable!("instantaneous list contains only instantaneous activities");
            };
            match best {
                Some(b) if priority < b => {}
                Some(b) if priority == b => out.push(a),
                _ => {
                    best = Some(priority);
                    out.clear();
                    out.push(a);
                }
            }
        }
        out
    }

    /// Whether no instantaneous activity is enabled (the marking is
    /// *stable* and time may advance).
    pub fn is_stable(&self, marking: &Marking) -> bool {
        self.instantaneous
            .iter()
            .all(|&a| !self.is_enabled(a, marking))
    }

    /// Exponential firing rate of a timed activity in a marking, or
    /// `None` if the activity's delay is not exponential.
    pub fn exponential_rate(&self, a: ActivityId, marking: &Marking) -> Option<f64> {
        match &self.activities[a.0].timing {
            Timing::Timed(crate::Delay::Exponential(rate)) => Some(rate.eval(marking)),
            _ => None,
        }
    }

    /// Whether every timed activity has an exponential delay (required
    /// by the SSA simulator backend and the CTMC generator).
    pub fn is_markovian(&self) -> bool {
        self.timed
            .iter()
            .all(|&a| match &self.activities[a.0].timing {
                Timing::Timed(d) => d.is_exponential(),
                Timing::Instantaneous { .. } => true,
            })
    }

    /// Evaluates the case distribution of `a` in `marking`.
    ///
    /// # Errors
    ///
    /// Returns [`SanError::InvalidCaseDistribution`] if the evaluated
    /// probabilities are negative or do not sum to 1 within 1e-6.
    pub fn case_probabilities(
        &self,
        a: ActivityId,
        marking: &Marking,
    ) -> Result<Vec<f64>, SanError> {
        let mut probs = Vec::new();
        self.case_probabilities_into(a, marking, &mut probs)?;
        Ok(probs)
    }

    /// Evaluates the case distribution of `a` in `marking` into a
    /// caller-owned buffer (cleared first), avoiding the allocation of
    /// [`case_probabilities`](SanModel::case_probabilities).
    ///
    /// # Errors
    ///
    /// Returns [`SanError::InvalidCaseDistribution`] if the evaluated
    /// probabilities are negative or do not sum to 1 within 1e-6.
    pub fn case_probabilities_into(
        &self,
        a: ActivityId,
        marking: &Marking,
        probs: &mut Vec<f64>,
    ) -> Result<(), SanError> {
        let act = &self.activities[a.0];
        probs.clear();
        probs.extend(act.cases.iter().map(|c| c.probability(marking)));
        let sum: f64 = probs.iter().sum();
        if probs.iter().any(|p| !p.is_finite() || *p < 0.0) || (sum - 1.0).abs() > 1e-6 {
            return Err(SanError::InvalidCaseDistribution {
                activity: act.name.clone(),
                sum,
            });
        }
        Ok(())
    }

    /// Randomly selects a case index according to the case distribution.
    ///
    /// # Errors
    ///
    /// Returns [`SanError::InvalidCaseDistribution`] if the distribution
    /// is invalid in this marking.
    pub fn select_case<R: Rng + ?Sized>(
        &self,
        a: ActivityId,
        marking: &Marking,
        rng: &mut R,
    ) -> Result<usize, SanError> {
        let mut probs = Vec::new();
        self.select_case_with(a, marking, rng, &mut probs)
    }

    /// Randomly selects a case index using a caller-owned probability
    /// buffer, avoiding the per-call allocation of
    /// [`select_case`](SanModel::select_case). Consumes randomness from
    /// `rng` in exactly the same pattern (one variate iff the activity
    /// has more than one case).
    ///
    /// # Errors
    ///
    /// Returns [`SanError::InvalidCaseDistribution`] if the distribution
    /// is invalid in this marking.
    pub fn select_case_with<R: Rng + ?Sized>(
        &self,
        a: ActivityId,
        marking: &Marking,
        rng: &mut R,
        probs: &mut Vec<f64>,
    ) -> Result<usize, SanError> {
        self.case_probabilities_into(a, marking, probs)?;
        if probs.len() == 1 {
            return Ok(0);
        }
        let u: f64 = rng.random::<f64>();
        let mut acc = 0.0;
        for (i, p) in probs.iter().enumerate() {
            acc += p;
            if u < acc {
                return Ok(i);
            }
        }
        Ok(probs.len() - 1)
    }

    /// Fires activity `a` with the given case, mutating `marking`.
    ///
    /// # Panics
    ///
    /// Panics if the activity is not enabled (input arcs unsatisfied) or
    /// `case` is out of range — both are engine bugs, not model states.
    pub fn fire(&self, a: ActivityId, case: usize, marking: &mut Marking) {
        let act = &self.activities[a.0];
        for (p, n) in &act.input_arcs {
            marking.remove_tokens(*p, *n);
        }
        for g in &act.input_gates {
            self.input_gates[g.0].apply(marking);
        }
        let c = &act.cases[case];
        for (p, n) in &c.output_arcs {
            marking.add_tokens(*p, *n);
        }
        for g in &c.output_gates {
            self.output_gates[g.0].apply(marking);
        }
    }

    /// Fires enabled instantaneous activities (respecting priorities and
    /// weights) until the marking is stable. Returns the sequence of
    /// activities fired.
    ///
    /// # Errors
    ///
    /// Returns [`SanError::InstantaneousLivelock`] if stabilization does
    /// not terminate within an internal budget, or
    /// [`SanError::InvalidCaseDistribution`] from case selection.
    pub fn stabilize<R: Rng + ?Sized>(
        &self,
        marking: &mut Marking,
        rng: &mut R,
    ) -> Result<Vec<ActivityId>, SanError> {
        let mut fired = Vec::new();
        for _ in 0..MAX_INSTANT_FIRINGS {
            let enabled = self.enabled_instantaneous(marking);
            if enabled.is_empty() {
                return Ok(fired);
            }
            let chosen = if enabled.len() == 1 {
                enabled[0]
            } else {
                let weights: Vec<f64> = enabled
                    .iter()
                    .map(|&a| match self.activities[a.0].timing {
                        Timing::Instantaneous { weight, .. } => weight,
                        Timing::Timed(_) => unreachable!(),
                    })
                    .collect();
                let total: f64 = weights.iter().sum();
                let mut u: f64 = rng.random::<f64>() * total;
                let mut pick = enabled[enabled.len() - 1];
                for (&a, &w) in enabled.iter().zip(weights.iter()) {
                    if u < w {
                        pick = a;
                        break;
                    }
                    u -= w;
                }
                pick
            };
            let case = self.select_case(chosen, marking, rng)?;
            self.fire(chosen, case, marking);
            fired.push(chosen);
        }
        Err(SanError::InstantaneousLivelock {
            iterations: MAX_INSTANT_FIRINGS,
        })
    }

    /// Exhaustive stabilization for numerical solvers: returns every
    /// stable marking reachable through instantaneous firings from
    /// `marking`, with its total probability. Branches over both
    /// weighted instantaneous choices and case distributions.
    ///
    /// # Errors
    ///
    /// Returns [`SanError::InstantaneousLivelock`] if the branching
    /// exceeds an internal budget, or
    /// [`SanError::InvalidCaseDistribution`] from case evaluation.
    pub fn stable_successors(&self, marking: &Marking) -> Result<Vec<(Marking, f64)>, SanError> {
        let mut stable: HashMap<Marking, f64> = HashMap::new();
        let mut frontier = vec![(marking.clone(), 1.0_f64)];
        let mut expansions = 0usize;

        while let Some((m, prob)) = frontier.pop() {
            let enabled = self.enabled_instantaneous(&m);
            if enabled.is_empty() {
                *stable.entry(m).or_insert(0.0) += prob;
                continue;
            }
            expansions += 1;
            if expansions > MAX_INSTANT_FIRINGS {
                return Err(SanError::InstantaneousLivelock {
                    iterations: MAX_INSTANT_FIRINGS,
                });
            }
            let weights: Vec<f64> = enabled
                .iter()
                .map(|&a| match self.activities[a.0].timing {
                    Timing::Instantaneous { weight, .. } => weight,
                    Timing::Timed(_) => unreachable!(),
                })
                .collect();
            let total: f64 = weights.iter().sum();
            for (&a, &w) in enabled.iter().zip(weights.iter()) {
                let probs = self.case_probabilities(a, &m)?;
                for (case, p_case) in probs.iter().enumerate() {
                    if *p_case == 0.0 {
                        continue;
                    }
                    let mut next = m.clone();
                    self.fire(a, case, &mut next);
                    frontier.push((next, prob * (w / total) * p_case));
                }
            }
        }
        Ok(stable.into_iter().collect())
    }

    /// Renders the net structure as Graphviz DOT (places as circles,
    /// timed activities as thick bars, instantaneous as thin bars).
    pub fn to_dot(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        let _ = writeln!(s, "digraph \"{}\" {{", self.name);
        let _ = writeln!(s, "  rankdir=LR;");
        for (i, p) in self.places.iter().enumerate() {
            let _ = writeln!(s, "  p{i} [shape=circle, label=\"{}\"];", p.name);
        }
        for (i, a) in self.activities.iter().enumerate() {
            let shape = if a.is_instantaneous() { "box" } else { "box3d" };
            let _ = writeln!(s, "  a{i} [shape={shape}, label=\"{}\"];", a.name);
            for (p, n) in &a.input_arcs {
                let lbl = if *n == 1 {
                    String::new()
                } else {
                    format!(" [label=\"{n}\"]")
                };
                let _ = writeln!(s, "  p{} -> a{i}{lbl};", p.0);
            }
            for c in &a.cases {
                for (p, n) in &c.output_arcs {
                    let lbl = if *n == 1 {
                        String::new()
                    } else {
                        format!(" [label=\"{n}\"]")
                    };
                    let _ = writeln!(s, "  a{i} -> p{}{lbl};", p.0);
                }
            }
        }
        s.push_str("}\n");
        s
    }
}

impl std::fmt::Debug for SanModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SanModel")
            .field("name", &self.name)
            .field("places", &self.places.len())
            .field("activities", &self.activities.len())
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::SanBuilder;
    use crate::delay::Delay;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    /// p0 --a--> p1 --i--> p2 with an instantaneous middle step.
    fn chain() -> (SanModel, PlaceId, PlaceId, PlaceId) {
        let mut b = SanBuilder::new("chain");
        let p0 = b.place_with_tokens("p0", 1).unwrap();
        let p1 = b.place("p1").unwrap();
        let p2 = b.place("p2").unwrap();
        b.timed_activity("a", Delay::exponential(2.0))
            .unwrap()
            .input_place(p0)
            .output_place(p1)
            .build()
            .unwrap();
        b.instant_activity("i", 0, 1.0)
            .unwrap()
            .input_place(p1)
            .output_place(p2)
            .build()
            .unwrap();
        (b.build().unwrap(), p0, p1, p2)
    }

    #[test]
    fn enabling_follows_tokens() {
        let (m, p0, _, _) = chain();
        let a = m.find_activity("a").unwrap();
        let mut marking = m.initial_marking().clone();
        assert!(m.is_enabled(a, &marking));
        marking.set_tokens(p0, 0);
        assert!(!m.is_enabled(a, &marking));
    }

    #[test]
    fn fire_moves_tokens_and_stabilize_cascades() {
        let (m, p0, p1, p2) = chain();
        let a = m.find_activity("a").unwrap();
        let mut marking = m.initial_marking().clone();
        m.fire(a, 0, &mut marking);
        assert_eq!(marking.tokens(p0), 0);
        assert_eq!(marking.tokens(p1), 1);
        assert!(!m.is_stable(&marking));

        let mut rng = SmallRng::seed_from_u64(0);
        let fired = m.stabilize(&mut marking, &mut rng).unwrap();
        assert_eq!(fired.len(), 1);
        assert_eq!(marking.tokens(p2), 1);
        assert!(m.is_stable(&marking));
    }

    #[test]
    fn input_gate_predicate_blocks() {
        let mut b = SanBuilder::new("gated");
        let p = b.place_with_tokens("p", 1).unwrap();
        let flag = b.place("flag").unwrap();
        let g = b.predicate_gate("need_flag", move |m| m.is_marked(flag));
        b.timed_activity("a", Delay::exponential(1.0))
            .unwrap()
            .input_place(p)
            .input_gate(g)
            .build()
            .unwrap();
        let model = b.build().unwrap();
        let a = model.find_activity("a").unwrap();
        let mut m = model.initial_marking().clone();
        assert!(!model.is_enabled(a, &m));
        m.add_tokens(flag, 1);
        assert!(model.is_enabled(a, &m));
    }

    #[test]
    fn priorities_order_instantaneous() {
        let mut b = SanBuilder::new("prio");
        let src = b.place_with_tokens("src", 1).unwrap();
        let lo = b.place("lo").unwrap();
        let hi = b.place("hi").unwrap();
        b.instant_activity("low", 1, 1.0)
            .unwrap()
            .input_place(src)
            .output_place(lo)
            .build()
            .unwrap();
        b.instant_activity("high", 5, 1.0)
            .unwrap()
            .input_place(src)
            .output_place(hi)
            .build()
            .unwrap();
        let model = b.build().unwrap();
        let m = model.initial_marking().clone();
        let enabled = model.enabled_instantaneous(&m);
        assert_eq!(enabled.len(), 1);
        assert_eq!(model.activity(enabled[0]).name(), "high");

        let mut marking = m;
        let mut rng = SmallRng::seed_from_u64(3);
        model.stabilize(&mut marking, &mut rng).unwrap();
        assert_eq!(marking.tokens(hi), 1);
        assert_eq!(marking.tokens(lo), 0);
    }

    #[test]
    fn weighted_choice_roughly_respects_weights() {
        let mut b = SanBuilder::new("weights");
        let src = b.place_with_tokens("src", 1).unwrap();
        let x = b.place("x").unwrap();
        let y = b.place("y").unwrap();
        b.instant_activity("to_x", 0, 3.0)
            .unwrap()
            .input_place(src)
            .output_place(x)
            .build()
            .unwrap();
        b.instant_activity("to_y", 0, 1.0)
            .unwrap()
            .input_place(src)
            .output_place(y)
            .build()
            .unwrap();
        let model = b.build().unwrap();
        let mut rng = SmallRng::seed_from_u64(11);
        let mut x_hits = 0;
        let trials = 4000;
        for _ in 0..trials {
            let mut m = model.initial_marking().clone();
            model.stabilize(&mut m, &mut rng).unwrap();
            if m.is_marked(x) {
                x_hits += 1;
            }
        }
        let frac = f64::from(x_hits) / f64::from(trials);
        assert!((frac - 0.75).abs() < 0.03, "to_x frequency {frac}");
    }

    #[test]
    fn case_selection_distribution() {
        let mut b = SanBuilder::new("cases");
        let src = b.place_with_tokens("src", 1).unwrap();
        let ok = b.place("ok").unwrap();
        let ko = b.place("ko").unwrap();
        b.timed_activity("m", Delay::exponential(1.0))
            .unwrap()
            .input_place(src)
            .case(0.9)
            .output_place(ok)
            .case(0.1)
            .output_place(ko)
            .build()
            .unwrap();
        let model = b.build().unwrap();
        let a = model.find_activity("m").unwrap();
        let mut rng = SmallRng::seed_from_u64(5);
        let mut ok_hits = 0;
        let trials = 5000;
        for _ in 0..trials {
            let mut m = model.initial_marking().clone();
            let case = model.select_case(a, &m, &mut rng).unwrap();
            model.fire(a, case, &mut m);
            if m.is_marked(ok) {
                ok_hits += 1;
            }
        }
        let frac = f64::from(ok_hits) / f64::from(trials);
        assert!((frac - 0.9).abs() < 0.02, "ok frequency {frac}");
    }

    #[test]
    fn stable_successors_enumerates_branches() {
        let mut b = SanBuilder::new("branching");
        let src = b.place_with_tokens("src", 1).unwrap();
        let x = b.place("x").unwrap();
        let y = b.place("y").unwrap();
        let z = b.place("z").unwrap();
        // One instantaneous with cases 0.5/0.5 to x or a middle place,
        // the middle place cascades to z via a second instantaneous.
        let mid = b.place("mid").unwrap();
        b.instant_activity("first", 0, 1.0)
            .unwrap()
            .input_place(src)
            .case(0.5)
            .output_place(x)
            .case(0.5)
            .output_place(mid)
            .build()
            .unwrap();
        b.instant_activity("second", 0, 1.0)
            .unwrap()
            .input_place(mid)
            .output_place(z)
            .build()
            .unwrap();
        let model = b.build().unwrap();
        let succ = model.stable_successors(model.initial_marking()).unwrap();
        assert_eq!(succ.len(), 2);
        let total: f64 = succ.iter().map(|(_, p)| p).sum();
        assert!((total - 1.0).abs() < 1e-12);
        for (m, p) in &succ {
            assert!((p - 0.5).abs() < 1e-12);
            assert!(m.is_marked(x) ^ m.is_marked(z));
            assert!(!m.is_marked(y));
        }
    }

    #[test]
    fn livelock_detected() {
        let mut b = SanBuilder::new("livelock");
        let p = b.place_with_tokens("p", 1).unwrap();
        b.instant_activity("spin", 0, 1.0)
            .unwrap()
            .input_place(p)
            .output_place(p)
            .build()
            .unwrap();
        let model = b.build().unwrap();
        let mut m = model.initial_marking().clone();
        let mut rng = SmallRng::seed_from_u64(0);
        assert!(matches!(
            model.stabilize(&mut m, &mut rng),
            Err(SanError::InstantaneousLivelock { .. })
        ));
    }

    #[test]
    fn markovian_detection() {
        let (m, _, _, _) = chain();
        assert!(m.is_markovian());

        let mut b = SanBuilder::new("det");
        let p = b.place_with_tokens("p", 1).unwrap();
        b.timed_activity("d", Delay::Deterministic(1.0))
            .unwrap()
            .input_place(p)
            .build()
            .unwrap();
        assert!(!b.build().unwrap().is_markovian());
    }

    #[test]
    fn exponential_rate_lookup() {
        let (m, _, _, _) = chain();
        let a = m.find_activity("a").unwrap();
        let i = m.find_activity("i").unwrap();
        let marking = m.initial_marking();
        assert_eq!(m.exponential_rate(a, marking), Some(2.0));
        assert_eq!(m.exponential_rate(i, marking), None);
    }

    #[test]
    fn dot_export_mentions_every_node() {
        let (m, _, _, _) = chain();
        let dot = m.to_dot();
        for p in m.places() {
            assert!(dot.contains(p.name()));
        }
        for a in m.activities() {
            assert!(dot.contains(a.name()));
        }
        assert!(dot.starts_with("digraph"));
    }
}
