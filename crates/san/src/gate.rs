//! Input and output gates.

use crate::marking::Marking;
use crate::place::PlaceId;

/// Opaque handle to an input gate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct InputGateId(pub(crate) usize);

impl InputGateId {
    /// Position of the gate in [`SanModel::input_gates`](crate::SanModel::input_gates).
    pub fn index(self) -> usize {
        self.0
    }
}

/// Opaque handle to an output gate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct OutputGateId(pub(crate) usize);

impl OutputGateId {
    /// Position of the gate in [`SanModel::output_gates`](crate::SanModel::output_gates).
    pub fn index(self) -> usize {
        self.0
    }
}

/// An input gate: an enabling predicate over the marking plus a marking
/// function executed when a connected activity completes.
///
/// In the paper's `One_vehicle` model the gates `IGi` encode maneuver
/// priorities ("when a higher priority maneuver is activated, all lower
/// priority maneuvers associated with the same vehicle are inhibited")
/// as predicates, and the `fi`/`fmi` gates update severity bookkeeping as
/// marking functions.
pub struct InputGate {
    pub(crate) name: String,
    pub(crate) predicate: Box<dyn Fn(&Marking) -> bool + Send + Sync>,
    pub(crate) function: Box<dyn Fn(&mut Marking) + Send + Sync>,
    /// Optional declaration of every place the gate may touch; checked
    /// by the linter's gate-purity pass against an instrumented marking.
    pub(crate) touches: Option<Vec<PlaceId>>,
    /// Optional refinement of `touches` into (predicate reads, marking
    /// function writes), declared via
    /// [`SanBuilder::input_gate_touching_split`](crate::SanBuilder::input_gate_touching_split).
    /// Tightens the dependency graph: only predicate reads couple this
    /// gate's activities to other activities' write-sets.
    pub(crate) split: Option<(Vec<PlaceId>, Vec<PlaceId>)>,
    /// Set for gates built via
    /// [`SanBuilder::predicate_gate`](crate::SanBuilder::predicate_gate):
    /// the marking function is supposed to be the identity, so any write
    /// it performs is a defect.
    pub(crate) pure_predicate: bool,
}

impl InputGate {
    /// Gate name (namespaced).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Evaluates the enabling predicate.
    pub fn holds(&self, marking: &Marking) -> bool {
        (self.predicate)(marking)
    }

    /// Applies the gate's marking function.
    pub fn apply(&self, marking: &mut Marking) {
        (self.function)(marking)
    }

    /// The places this gate declared it may touch, if declared.
    pub fn declared_touches(&self) -> Option<&[PlaceId]> {
        self.touches.as_deref()
    }

    /// The places the enabling predicate may read: the split
    /// declaration when present, otherwise the whole `touches` set.
    /// `None` means undeclared (the dependency graph is unsound).
    pub fn declared_reads(&self) -> Option<&[PlaceId]> {
        match &self.split {
            Some((reads, _)) => Some(reads),
            None => self.touches.as_deref(),
        }
    }

    /// The places the marking function may write: the split declaration
    /// when present; empty for a pure predicate (identity function);
    /// otherwise the whole `touches` set. `None` means undeclared.
    pub fn declared_writes(&self) -> Option<&[PlaceId]> {
        match &self.split {
            Some((_, writes)) => Some(writes),
            None if self.pure_predicate => Some(&[]),
            None => self.touches.as_deref(),
        }
    }

    /// Whether the gate was declared as a pure predicate (identity
    /// marking function).
    pub fn is_pure_predicate(&self) -> bool {
        self.pure_predicate
    }
}

impl std::fmt::Debug for InputGate {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("InputGate")
            .field("name", &self.name)
            .finish_non_exhaustive()
    }
}

/// An output gate: a marking function executed on activity completion
/// (after case selection, for the chosen case).
pub struct OutputGate {
    pub(crate) name: String,
    pub(crate) function: Box<dyn Fn(&mut Marking) + Send + Sync>,
    /// Optional declaration of every place the gate may touch; checked
    /// by the linter's gate-purity pass against an instrumented marking.
    pub(crate) touches: Option<Vec<PlaceId>>,
}

impl OutputGate {
    /// Gate name (namespaced).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Applies the gate's marking function.
    pub fn apply(&self, marking: &mut Marking) {
        (self.function)(marking)
    }

    /// The places this gate declared it may touch, if declared.
    pub fn declared_touches(&self) -> Option<&[PlaceId]> {
        self.touches.as_deref()
    }
}

impl std::fmt::Debug for OutputGate {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("OutputGate")
            .field("name", &self.name)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::place::{PlaceDecl, PlaceId, PlaceKind};

    fn one_place_marking(tokens: u64) -> Marking {
        Marking::from_decls(&[PlaceDecl {
            name: "p".into(),
            kind: PlaceKind::Simple,
            initial_tokens: tokens,
            initial_array: vec![],
        }])
    }

    #[test]
    fn input_gate_predicate_and_function() {
        let g = InputGate {
            name: "guard".into(),
            predicate: Box::new(|m| m.tokens(PlaceId(0)) >= 2),
            function: Box::new(|m| m.set_tokens(PlaceId(0), 0)),
            touches: None,
            split: None,
            pure_predicate: false,
        };
        let mut m = one_place_marking(3);
        assert!(g.holds(&m));
        g.apply(&mut m);
        assert_eq!(m.tokens(PlaceId(0)), 0);
        assert!(!g.holds(&m));
        assert_eq!(g.name(), "guard");
        assert!(format!("{g:?}").contains("guard"));
    }

    #[test]
    fn output_gate_function() {
        let g = OutputGate {
            name: "og".into(),
            function: Box::new(|m| m.add_tokens(PlaceId(0), 5)),
            touches: None,
        };
        let mut m = one_place_marking(0);
        g.apply(&mut m);
        assert_eq!(m.tokens(PlaceId(0)), 5);
    }
}
