//! Incremental construction of SAN models, including `Join`/`Rep`-style
//! composition through namespaces and shared places.

use std::collections::HashMap;

use crate::activity::{Activity, ActivityId, Case, CaseProb, Timing};
use crate::delay::Delay;
use crate::error::SanError;
use crate::gate::{InputGate, InputGateId, OutputGate, OutputGateId};
use crate::marking::Marking;
use crate::model::SanModel;
use crate::place::{PlaceDecl, PlaceId, PlaceKind};

/// Builder for [`SanModel`]s.
///
/// Composition follows the Möbius pattern: `Rep` and `Join` do not copy
/// submodels, they *merge state* — replicas share designated places and
/// keep private copies of the rest. Here that is expressed directly:
///
/// * [`SanBuilder::join`] opens a named scope; places and activities
///   declared inside get a `scope.`-qualified name;
/// * [`SanBuilder::replicate`] runs a module-building closure `count`
///   times under `name[i].` scopes;
/// * [`SanBuilder::shared_place`] (and variants) create-or-look-up a
///   place by *global* name, ignoring the current scope — these are the
///   shared state variables of a Join.
///
/// # Example
///
/// ```
/// use ahs_san::{Delay, SanBuilder};
///
/// let mut b = SanBuilder::new("pool");
/// let bus = b.shared_place("bus")?; // shared by all replicas
/// b.replicate("worker", 3, |b, _i| {
///     let idle = b.place_with_tokens("idle", 1)?;
///     b.timed_activity("work", Delay::exponential(1.0))?
///         .input_place(idle)
///         .output_place(bus)
///         .build()?;
///     Ok(())
/// })?;
/// let model = b.build()?;
/// assert_eq!(model.num_places(), 4); // bus + 3 private `idle`s
/// assert_eq!(model.num_activities(), 3);
/// # Ok::<(), ahs_san::SanError>(())
/// ```
pub struct SanBuilder {
    name: String,
    prefix: Vec<String>,
    places: Vec<PlaceDecl>,
    place_names: HashMap<String, PlaceId>,
    input_gates: Vec<InputGate>,
    output_gates: Vec<OutputGate>,
    activities: Vec<Activity>,
    activity_names: HashMap<String, ActivityId>,
    strict: bool,
}

impl SanBuilder {
    /// Creates an empty builder for a model with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        SanBuilder {
            name: name.into(),
            prefix: Vec::new(),
            places: Vec::new(),
            place_names: HashMap::new(),
            input_gates: Vec::new(),
            output_gates: Vec::new(),
            activities: Vec::new(),
            activity_names: HashMap::new(),
            strict: false,
        }
    }

    /// Enables strict validation: [`SanBuilder::build`] will additionally
    /// run the static subset of the `ahs-lint` checks — individual case
    /// probabilities in `[0, 1]`, no degenerate delays, no structurally
    /// dead places or trivially always-enabled activities, and gate
    /// declarations (see [`SanBuilder::input_gate_touching`]) honored at
    /// the initial marking — and fail with
    /// [`SanError::StrictValidation`] when any check trips.
    ///
    /// Reachability-based checks (dead activities, absorbing markings,
    /// marking-dependent case distributions over reachable states) need
    /// state-space exploration and live in the `ahs-lint` crate instead.
    pub fn validate_strict(&mut self) -> &mut Self {
        self.strict = true;
        self
    }

    fn qualify(&self, name: &str) -> String {
        if self.prefix.is_empty() {
            name.to_owned()
        } else {
            format!("{}.{}", self.prefix.join("."), name)
        }
    }

    fn add_place(&mut self, qualified: String, decl: PlaceDecl) -> Result<PlaceId, SanError> {
        if self.place_names.contains_key(&qualified) {
            return Err(SanError::DuplicatePlace { name: qualified });
        }
        let id = PlaceId(self.places.len());
        self.place_names.insert(qualified, id);
        self.places.push(decl);
        Ok(id)
    }

    /// Declares an empty simple place in the current scope.
    ///
    /// # Errors
    ///
    /// Returns [`SanError::DuplicatePlace`] if the qualified name exists.
    pub fn place(&mut self, name: &str) -> Result<PlaceId, SanError> {
        self.place_with_tokens(name, 0)
    }

    /// Declares a simple place with an initial token count.
    ///
    /// # Errors
    ///
    /// Returns [`SanError::DuplicatePlace`] if the qualified name exists.
    pub fn place_with_tokens(&mut self, name: &str, tokens: u64) -> Result<PlaceId, SanError> {
        let q = self.qualify(name);
        self.add_place(
            q.clone(),
            PlaceDecl {
                name: q,
                kind: PlaceKind::Simple,
                initial_tokens: tokens,
                initial_array: vec![],
            },
        )
    }

    /// Declares an extended (array) place of the given length,
    /// initialized to zeros.
    ///
    /// # Errors
    ///
    /// Returns [`SanError::DuplicatePlace`] if the qualified name exists.
    pub fn extended_place(&mut self, name: &str, len: usize) -> Result<PlaceId, SanError> {
        self.extended_place_init(name, vec![0; len])
    }

    /// Declares an extended place with explicit initial contents.
    ///
    /// # Errors
    ///
    /// Returns [`SanError::DuplicatePlace`] if the qualified name exists.
    pub fn extended_place_init(
        &mut self,
        name: &str,
        initial: Vec<i64>,
    ) -> Result<PlaceId, SanError> {
        let q = self.qualify(name);
        self.add_place(
            q.clone(),
            PlaceDecl {
                name: q,
                kind: PlaceKind::Extended { len: initial.len() },
                initial_tokens: 0,
                initial_array: initial,
            },
        )
    }

    /// Creates or looks up a *shared* simple place by global name
    /// (ignores the current scope). The first call creates the place
    /// with zero tokens; later calls return the same handle.
    ///
    /// # Errors
    ///
    /// Returns [`SanError::DuplicatePlace`] if the global name exists
    /// but refers to an extended place.
    pub fn shared_place(&mut self, name: &str) -> Result<PlaceId, SanError> {
        self.shared_place_with_tokens(name, 0)
    }

    /// Creates or looks up a shared simple place; `tokens` only applies
    /// on first creation.
    ///
    /// # Errors
    ///
    /// Returns [`SanError::DuplicatePlace`] on kind mismatch.
    pub fn shared_place_with_tokens(
        &mut self,
        name: &str,
        tokens: u64,
    ) -> Result<PlaceId, SanError> {
        if let Some(&id) = self.place_names.get(name) {
            if self.places[id.0].kind != PlaceKind::Simple {
                return Err(SanError::DuplicatePlace { name: name.into() });
            }
            return Ok(id);
        }
        self.add_place(
            name.to_owned(),
            PlaceDecl {
                name: name.to_owned(),
                kind: PlaceKind::Simple,
                initial_tokens: tokens,
                initial_array: vec![],
            },
        )
    }

    /// Creates or looks up a shared extended place by global name;
    /// `initial` only applies on first creation.
    ///
    /// # Errors
    ///
    /// Returns [`SanError::DuplicatePlace`] on kind or length mismatch.
    pub fn shared_extended_place(
        &mut self,
        name: &str,
        initial: Vec<i64>,
    ) -> Result<PlaceId, SanError> {
        if let Some(&id) = self.place_names.get(name) {
            if self.places[id.0].kind != (PlaceKind::Extended { len: initial.len() }) {
                return Err(SanError::DuplicatePlace { name: name.into() });
            }
            return Ok(id);
        }
        self.add_place(
            name.to_owned(),
            PlaceDecl {
                name: name.to_owned(),
                kind: PlaceKind::Extended { len: initial.len() },
                initial_tokens: 0,
                initial_array: initial,
            },
        )
    }

    /// Looks up a place by fully-qualified global name.
    pub fn find_place(&self, qualified_name: &str) -> Option<PlaceId> {
        self.place_names.get(qualified_name).copied()
    }

    /// Registers an input gate (enabling predicate + marking function).
    pub fn input_gate<P, F>(&mut self, name: &str, predicate: P, function: F) -> InputGateId
    where
        P: Fn(&Marking) -> bool + Send + Sync + 'static,
        F: Fn(&mut Marking) + Send + Sync + 'static,
    {
        let id = InputGateId(self.input_gates.len());
        self.input_gates.push(InputGate {
            name: self.qualify(name),
            predicate: Box::new(predicate),
            function: Box::new(function),
            touches: None,
            split: None,
            pure_predicate: false,
        });
        id
    }

    /// Registers an input gate together with a declaration of every
    /// place its predicate or marking function may touch.
    ///
    /// The declaration is not enforced at runtime (closures stay
    /// zero-cost); it is checked by the linter's gate-purity pass, which
    /// evaluates the gate against an instrumented marking and flags any
    /// access outside `touches`.
    pub fn input_gate_touching<P, F>(
        &mut self,
        name: &str,
        touches: impl IntoIterator<Item = PlaceId>,
        predicate: P,
        function: F,
    ) -> InputGateId
    where
        P: Fn(&Marking) -> bool + Send + Sync + 'static,
        F: Fn(&mut Marking) + Send + Sync + 'static,
    {
        let id = self.input_gate(name, predicate, function);
        self.input_gates[id.0].touches = Some(touches.into_iter().collect());
        id
    }

    /// Registers an input gate with its declaration *split* into the
    /// places the enabling predicate may read and the places the
    /// marking function may write.
    ///
    /// The split tightens the activity dependency graph: under a plain
    /// [`input_gate_touching`](SanBuilder::input_gate_touching)
    /// declaration every touched place counts as both a read and a
    /// write, so a gate whose marking function updates shared
    /// bookkeeping couples its activity to every reader of that
    /// bookkeeping — even though its *enabledness* never depends on it.
    /// With a split declaration only `reads` feed the read-set and only
    /// `writes` feed the write-set, so incremental enablement
    /// re-evaluates far fewer activities per firing.
    ///
    /// Both closures must stay inside `reads ∪ writes` (the gate-purity
    /// pass checks this), the predicate must read only `reads`, and the
    /// marking function must write only `writes` (the write-set pass
    /// checks these against instrumented executions). A marking
    /// function may *read* any declared place.
    pub fn input_gate_touching_split<P, F>(
        &mut self,
        name: &str,
        reads: impl IntoIterator<Item = PlaceId>,
        writes: impl IntoIterator<Item = PlaceId>,
        predicate: P,
        function: F,
    ) -> InputGateId
    where
        P: Fn(&Marking) -> bool + Send + Sync + 'static,
        F: Fn(&mut Marking) + Send + Sync + 'static,
    {
        let reads: Vec<PlaceId> = reads.into_iter().collect();
        let writes: Vec<PlaceId> = writes.into_iter().collect();
        let mut touches = reads.clone();
        touches.extend(writes.iter().copied().filter(|p| !reads.contains(p)));
        let id = self.input_gate(name, predicate, function);
        self.input_gates[id.0].touches = Some(touches);
        self.input_gates[id.0].split = Some((reads, writes));
        id
    }

    /// Registers a pure-predicate input gate (identity marking function).
    ///
    /// The linter's gate-purity pass verifies the purity claim: a
    /// predicate gate whose marking function writes any place is
    /// reported as a defect.
    pub fn predicate_gate<P>(&mut self, name: &str, predicate: P) -> InputGateId
    where
        P: Fn(&Marking) -> bool + Send + Sync + 'static,
    {
        let id = self.input_gate(name, predicate, |_| {});
        self.input_gates[id.0].pure_predicate = true;
        id
    }

    /// Registers a pure-predicate input gate together with a declaration
    /// of every place its predicate may read (see
    /// [`SanBuilder::input_gate_touching`]).
    pub fn predicate_gate_touching<P>(
        &mut self,
        name: &str,
        touches: impl IntoIterator<Item = PlaceId>,
        predicate: P,
    ) -> InputGateId
    where
        P: Fn(&Marking) -> bool + Send + Sync + 'static,
    {
        let id = self.predicate_gate(name, predicate);
        self.input_gates[id.0].touches = Some(touches.into_iter().collect());
        id
    }

    /// Declares an existing input gate to be a pure predicate: a claim
    /// that its marking function is the identity.
    ///
    /// [`SanBuilder::predicate_gate`] makes the claim automatically (and
    /// installs an identity function, so it is true by construction);
    /// this method lets generic composition helpers that register gates
    /// through [`SanBuilder::input_gate`] make the same claim. The claim
    /// is *verified*, not trusted: strict validation and the linter's
    /// gate-purity pass run the marking function against an instrumented
    /// marking and report any write as a defect.
    ///
    /// # Panics
    ///
    /// Panics if `gate` does not belong to this builder.
    pub fn claim_pure_predicate(&mut self, gate: InputGateId) -> &mut Self {
        self.input_gates[gate.0].pure_predicate = true;
        self
    }

    /// Registers an output gate (marking function).
    pub fn output_gate<F>(&mut self, name: &str, function: F) -> OutputGateId
    where
        F: Fn(&mut Marking) + Send + Sync + 'static,
    {
        let id = OutputGateId(self.output_gates.len());
        self.output_gates.push(OutputGate {
            name: self.qualify(name),
            function: Box::new(function),
            touches: None,
        });
        id
    }

    /// Registers an output gate together with a declaration of every
    /// place its marking function may touch (see
    /// [`SanBuilder::input_gate_touching`]).
    pub fn output_gate_touching<F>(
        &mut self,
        name: &str,
        touches: impl IntoIterator<Item = PlaceId>,
        function: F,
    ) -> OutputGateId
    where
        F: Fn(&mut Marking) + Send + Sync + 'static,
    {
        let id = self.output_gate(name, function);
        self.output_gates[id.0].touches = Some(touches.into_iter().collect());
        id
    }

    /// Starts a timed activity with the given delay distribution.
    ///
    /// # Errors
    ///
    /// Returns [`SanError::DuplicateActivity`] on a name clash or
    /// [`SanError::InvalidDelay`] on bad distribution parameters.
    pub fn timed_activity(
        &mut self,
        name: &str,
        delay: Delay,
    ) -> Result<ActivityBuilder<'_>, SanError> {
        let q = self.qualify(name);
        if self.activity_names.contains_key(&q) {
            return Err(SanError::DuplicateActivity { name: q });
        }
        if let Err(reason) = delay.validate() {
            return Err(SanError::InvalidDelay {
                activity: q,
                reason,
            });
        }
        Ok(ActivityBuilder::new(self, q, Timing::Timed(delay)))
    }

    /// Starts an instantaneous activity with selection priority and
    /// tie-break weight.
    ///
    /// # Errors
    ///
    /// Returns [`SanError::DuplicateActivity`] on a name clash or
    /// [`SanError::InvalidWeight`] if `weight` is not positive.
    pub fn instant_activity(
        &mut self,
        name: &str,
        priority: u32,
        weight: f64,
    ) -> Result<ActivityBuilder<'_>, SanError> {
        let q = self.qualify(name);
        if self.activity_names.contains_key(&q) {
            return Err(SanError::DuplicateActivity { name: q });
        }
        if !weight.is_finite() || weight <= 0.0 {
            return Err(SanError::InvalidWeight {
                activity: q,
                weight,
            });
        }
        Ok(ActivityBuilder::new(
            self,
            q,
            Timing::Instantaneous { priority, weight },
        ))
    }

    /// Runs `f` inside a named scope (`Join` composition): declarations
    /// made by `f` are qualified with `scope.`.
    ///
    /// # Errors
    ///
    /// Propagates any error from `f`.
    pub fn join<F>(&mut self, scope: &str, f: F) -> Result<(), SanError>
    where
        F: FnOnce(&mut SanBuilder) -> Result<(), SanError>,
    {
        self.prefix.push(scope.to_owned());
        let result = f(self);
        self.prefix.pop();
        result
    }

    /// Runs `f` `count` times under scopes `scope[0]` … `scope[count-1]`
    /// (`Rep` composition). Shared places created inside via
    /// [`SanBuilder::shared_place`] are common to all replicas; scoped
    /// places are private per replica.
    ///
    /// # Errors
    ///
    /// Propagates the first error from `f`.
    pub fn replicate<F>(&mut self, scope: &str, count: usize, mut f: F) -> Result<(), SanError>
    where
        F: FnMut(&mut SanBuilder, usize) -> Result<(), SanError>,
    {
        for i in 0..count {
            self.join(&format!("{scope}[{i}]"), |b| f(b, i))?;
        }
        Ok(())
    }

    /// Finalizes the model.
    ///
    /// # Errors
    ///
    /// Returns [`SanError::EmptyModel`] if no places or no activities
    /// were declared, and [`SanError::StrictValidation`] if
    /// [`SanBuilder::validate_strict`] was requested and a static check
    /// failed.
    pub fn build(self) -> Result<SanModel, SanError> {
        if self.places.is_empty() || self.activities.is_empty() {
            return Err(SanError::EmptyModel);
        }
        let strict = self.strict;
        let initial = Marking::from_decls(&self.places);
        let model = SanModel::new(
            self.name,
            self.places,
            self.input_gates,
            self.output_gates,
            self.activities,
            initial,
        );
        if strict {
            let diagnostics = strict_diagnostics(&model);
            if !diagnostics.is_empty() {
                return Err(SanError::StrictValidation {
                    model: model.name().to_owned(),
                    diagnostics,
                });
            }
        }
        Ok(model)
    }
}

/// The static (no state-space exploration) subset of the lint checks,
/// run by [`SanBuilder::build`] under [`SanBuilder::validate_strict`].
fn strict_diagnostics(model: &SanModel) -> Vec<String> {
    let mut out = Vec::new();

    // Individual constant case probabilities must be valid even when the
    // sum works out (e.g. `1.5` and `-0.5` sum to 1 but are nonsense).
    for a in model.activities() {
        for (idx, case) in a.cases().iter().enumerate() {
            if let CaseProb::Const(p) = case.probability_spec() {
                if !(0.0..=1.0).contains(p) || !p.is_finite() {
                    out.push(format!(
                        "activity `{}` case {idx}: constant probability {p} outside [0, 1]",
                        a.name()
                    ));
                }
            }
        }
        if let Timing::Timed(delay) = a.timing() {
            if delay.is_degenerate() {
                out.push(format!(
                    "activity `{}`: timed activity with a zero-width delay \
                     (use an instantaneous activity instead)",
                    a.name()
                ));
            }
        }
    }

    let report = model.analyze();
    for name in &report.arc_isolated_places {
        let gate_touched = model.input_gates().iter().any(|g| {
            g.declared_touches()
                .is_some_and(|t| t.iter().any(|p| model.place_name(*p) == name))
        }) || model.output_gates().iter().any(|g| {
            g.declared_touches()
                .is_some_and(|t| t.iter().any(|p| model.place_name(*p) == name))
        });
        if !gate_touched {
            out.push(format!(
                "place `{name}` is not connected to any arc or declared gate"
            ));
        }
    }
    for name in &report.always_enabled_activities {
        out.push(format!(
            "activity `{name}` has no input arcs or gates and can never be disabled"
        ));
    }
    for name in &report.arc_silent_activities {
        out.push(format!(
            "activity `{name}` has no arcs or gates and firing it changes nothing"
        ));
    }

    // Gate declarations, checked at the initial marking. The linter
    // repeats this over reachable markings; here it catches gates that
    // are wrong from the very first evaluation.
    //
    // A gate's marking function only ever runs when an attached
    // activity fires, and may rely on that precondition (e.g. removing
    // a token that is only present mid-maneuver), so it is traced only
    // for gates attached to an activity that can fire from the initial
    // marking. Predicates must be total — `is_enabled` evaluates them
    // in arbitrary markings — so they are always traced.
    let initial = model.initial_marking();
    let fireable = if model.is_stable(initial) {
        model.enabled_timed(initial)
    } else {
        model.enabled_instantaneous(initial)
    };
    let mut ig_fires = vec![false; model.input_gates().len()];
    let mut og_fires = vec![false; model.output_gates().len()];
    for &a in &fireable {
        let act = model.activity(a);
        for g in act.input_gates() {
            ig_fires[g.index()] = true;
        }
        for case in act.cases() {
            for g in case.output_gates() {
                og_fires[g.index()] = true;
            }
        }
    }

    for (idx, gate) in model.input_gates().iter().enumerate() {
        let mut shadow = initial.clone();
        let (_, trace) = crate::trace::record(|| {
            let _ = gate.holds(&shadow);
            if ig_fires[idx] {
                gate.apply(&mut shadow);
            }
        });
        if gate.is_pure_predicate() && !trace.is_read_only() {
            out.push(format!(
                "input gate `{}` is declared as a pure predicate but writes places",
                gate.name()
            ));
        }
        if let Some(declared) = gate.declared_touches() {
            for p in trace.touched() {
                if !declared.contains(&p) {
                    out.push(format!(
                        "input gate `{}` touches undeclared place `{}`",
                        gate.name(),
                        model.place_name(p)
                    ));
                }
            }
        }
    }
    for (idx, gate) in model.output_gates().iter().enumerate() {
        if let Some(declared) = gate.declared_touches() {
            if !og_fires[idx] {
                continue;
            }
            let mut shadow = initial.clone();
            let (_, trace) = crate::trace::record(|| gate.apply(&mut shadow));
            for p in trace.touched() {
                if !declared.contains(&p) {
                    out.push(format!(
                        "output gate `{}` touches undeclared place `{}`",
                        gate.name(),
                        model.place_name(p)
                    ));
                }
            }
        }
    }

    out
}

impl std::fmt::Debug for SanBuilder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SanBuilder")
            .field("name", &self.name)
            .field("places", &self.places.len())
            .field("activities", &self.activities.len())
            .finish_non_exhaustive()
    }
}

/// Builder for a single activity; created by
/// [`SanBuilder::timed_activity`] / [`SanBuilder::instant_activity`].
///
/// Output arcs and gates attach to the *current case*. Until
/// [`ActivityBuilder::case`] is called an implicit probability-1 case is
/// used; calling `case` starts an explicit case (the implicit case must
/// then be empty).
#[must_use = "call .build() to register the activity"]
pub struct ActivityBuilder<'b> {
    builder: &'b mut SanBuilder,
    name: String,
    timing: Timing,
    input_arcs: Vec<(PlaceId, u64)>,
    input_gates: Vec<InputGateId>,
    cases: Vec<Case>,
    explicit_cases: bool,
}

impl<'b> ActivityBuilder<'b> {
    fn new(builder: &'b mut SanBuilder, name: String, timing: Timing) -> Self {
        ActivityBuilder {
            builder,
            name,
            timing,
            input_arcs: Vec::new(),
            input_gates: Vec::new(),
            cases: vec![Case {
                probability: CaseProb::Const(1.0),
                output_arcs: Vec::new(),
                output_gates: Vec::new(),
            }],
            explicit_cases: false,
        }
    }

    /// Adds an input arc requiring (and consuming) one token.
    pub fn input_place(self, place: PlaceId) -> Self {
        self.input_arc(place, 1)
    }

    /// Adds an input arc requiring (and consuming) `tokens` tokens.
    pub fn input_arc(mut self, place: PlaceId, tokens: u64) -> Self {
        self.input_arcs.push((place, tokens));
        self
    }

    /// Attaches an input gate.
    pub fn input_gate(mut self, gate: InputGateId) -> Self {
        self.input_gates.push(gate);
        self
    }

    /// Starts a new case with a fixed probability.
    pub fn case(mut self, probability: f64) -> Self {
        self.start_case(CaseProb::Const(probability));
        self
    }

    /// Starts a new case with a marking-dependent probability.
    pub fn case_fn<F>(mut self, probability: F) -> Self
    where
        F: Fn(&Marking) -> f64 + Send + Sync + 'static,
    {
        self.start_case(CaseProb::MarkingDependent(Box::new(probability)));
        self
    }

    fn start_case(&mut self, probability: CaseProb) {
        if !self.explicit_cases {
            // Replace the implicit case — it must still be empty.
            let implicit = &self.cases[0];
            assert!(
                implicit.output_arcs.is_empty() && implicit.output_gates.is_empty(),
                "activity `{}`: outputs were attached before the first explicit case",
                self.name
            );
            self.cases.clear();
            self.explicit_cases = true;
        }
        self.cases.push(Case {
            probability,
            output_arcs: Vec::new(),
            output_gates: Vec::new(),
        });
    }

    fn current_case(&mut self) -> &mut Case {
        self.cases
            .last_mut()
            .expect("at least one case always exists")
    }

    /// Adds an output arc depositing one token (to the current case).
    pub fn output_place(self, place: PlaceId) -> Self {
        self.output_arc(place, 1)
    }

    /// Adds an output arc depositing `tokens` tokens (current case).
    pub fn output_arc(mut self, place: PlaceId, tokens: u64) -> Self {
        self.current_case().output_arcs.push((place, tokens));
        self
    }

    /// Attaches an output gate (current case).
    pub fn output_gate(mut self, gate: OutputGateId) -> Self {
        self.current_case().output_gates.push(gate);
        self
    }

    /// Registers the activity with the model builder.
    ///
    /// # Errors
    ///
    /// Returns [`SanError::NoCases`] if explicit cases were started but
    /// none completed, or [`SanError::InvalidCaseDistribution`] if all
    /// case probabilities are constants that do not sum to 1 (within
    /// 1e-9; marking-dependent distributions are validated at firing
    /// time instead).
    pub fn build(self) -> Result<ActivityId, SanError> {
        if self.cases.is_empty() {
            return Err(SanError::NoCases {
                activity: self.name,
            });
        }
        let const_sum: Option<f64> = self
            .cases
            .iter()
            .map(|c| match &c.probability {
                CaseProb::Const(p) => Some(*p),
                CaseProb::MarkingDependent(_) => None,
            })
            .sum();
        if let Some(sum) = const_sum {
            if (sum - 1.0).abs() > 1e-9 {
                return Err(SanError::InvalidCaseDistribution {
                    activity: self.name,
                    sum,
                });
            }
        }
        let id = ActivityId(self.builder.activities.len());
        self.builder.activity_names.insert(self.name.clone(), id);
        self.builder.activities.push(Activity {
            name: self.name,
            timing: self.timing,
            input_arcs: self.input_arcs,
            input_gates: self.input_gates,
            cases: self.cases,
        });
        Ok(id)
    }
}

impl std::fmt::Debug for ActivityBuilder<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ActivityBuilder")
            .field("name", &self.name)
            .field("cases", &self.cases.len())
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duplicate_place_rejected() {
        let mut b = SanBuilder::new("m");
        b.place("p").unwrap();
        assert_eq!(
            b.place("p").unwrap_err(),
            SanError::DuplicatePlace { name: "p".into() }
        );
    }

    #[test]
    fn scoped_names_do_not_clash() {
        let mut b = SanBuilder::new("m");
        b.place("p").unwrap();
        b.join("sub", |b| {
            b.place("p")?; // qualified as sub.p
            Ok(())
        })
        .unwrap();
        assert!(b.find_place("p").is_some());
        assert!(b.find_place("sub.p").is_some());
    }

    #[test]
    fn shared_place_is_shared_across_replicas() {
        let mut b = SanBuilder::new("m");
        let mut seen = Vec::new();
        b.replicate("r", 3, |b, _| {
            seen.push(b.shared_place("bus")?);
            b.place("private")?;
            Ok(())
        })
        .unwrap();
        assert_eq!(seen[0], seen[1]);
        assert_eq!(seen[1], seen[2]);
        assert!(b.find_place("r[0].private").is_some());
        assert!(b.find_place("r[2].private").is_some());
        assert!(b.find_place("r[3].private").is_none());
    }

    #[test]
    fn shared_place_kind_mismatch_rejected() {
        let mut b = SanBuilder::new("m");
        b.shared_extended_place("arr", vec![0, 0]).unwrap();
        assert!(b.shared_place("arr").is_err());
        assert!(b.shared_extended_place("arr", vec![0]).is_err());
        assert!(b.shared_extended_place("arr", vec![5, 5]).is_ok());
    }

    #[test]
    fn empty_model_rejected() {
        let b = SanBuilder::new("m");
        assert_eq!(b.build().unwrap_err(), SanError::EmptyModel);
    }

    #[test]
    fn invalid_rate_rejected() {
        let mut b = SanBuilder::new("m");
        b.place("p").unwrap();
        let err = b.timed_activity("a", Delay::exponential(-1.0)).unwrap_err();
        assert!(matches!(err, SanError::InvalidDelay { .. }));
    }

    #[test]
    fn case_probabilities_must_sum_to_one() {
        let mut b = SanBuilder::new("m");
        let p = b.place_with_tokens("p", 1).unwrap();
        let err = b
            .timed_activity("a", Delay::exponential(1.0))
            .unwrap()
            .input_place(p)
            .case(0.3)
            .case(0.3)
            .build()
            .unwrap_err();
        assert!(matches!(err, SanError::InvalidCaseDistribution { .. }));
    }

    #[test]
    fn duplicate_activity_rejected() {
        let mut b = SanBuilder::new("m");
        let p = b.place_with_tokens("p", 1).unwrap();
        b.timed_activity("a", Delay::exponential(1.0))
            .unwrap()
            .input_place(p)
            .build()
            .unwrap();
        assert!(matches!(
            b.timed_activity("a", Delay::exponential(1.0)),
            Err(SanError::DuplicateActivity { .. })
        ));
    }

    #[test]
    fn instant_weight_validated() {
        let mut b = SanBuilder::new("m");
        b.place("p").unwrap();
        assert!(matches!(
            b.instant_activity("i", 0, 0.0),
            Err(SanError::InvalidWeight { .. })
        ));
    }

    /// A minimal cycle so strict models have at least one activity.
    fn add_cycle(b: &mut SanBuilder) {
        let p = b.place_with_tokens("p", 1).unwrap();
        let q = b.place("q").unwrap();
        b.timed_activity("pq", Delay::exponential(1.0))
            .unwrap()
            .input_place(p)
            .output_place(q)
            .build()
            .unwrap();
        b.timed_activity("qp", Delay::exponential(1.0))
            .unwrap()
            .input_place(q)
            .output_place(p)
            .build()
            .unwrap();
    }

    #[test]
    fn strict_rejects_orphan_place() {
        let mut b = SanBuilder::new("m");
        b.validate_strict();
        add_cycle(&mut b);
        b.place("orphan").unwrap();
        let err = b.build().unwrap_err();
        match err {
            SanError::StrictValidation { diagnostics, .. } => {
                assert!(
                    diagnostics.iter().any(|d| d.contains("orphan")),
                    "{diagnostics:?}"
                );
            }
            other => panic!("expected StrictValidation, got {other:?}"),
        }
    }

    #[test]
    fn strict_accepts_gate_covered_place() {
        let mut b = SanBuilder::new("m");
        b.validate_strict();
        add_cycle(&mut b);
        let counter = b.place("counter").unwrap();
        let og = b.output_gate_touching("bump", [counter], move |m| {
            m.add_tokens(counter, 1);
        });
        let p = b.find_place("p").unwrap();
        let r = b.place("r").unwrap();
        b.timed_activity("pr", Delay::exponential(1.0))
            .unwrap()
            .input_place(p)
            .output_place(r)
            .output_gate(og)
            .build()
            .unwrap();
        b.timed_activity("rp", Delay::exponential(1.0))
            .unwrap()
            .input_place(r)
            .output_place(p)
            .build()
            .unwrap();
        assert!(b.build().is_ok());
    }

    #[test]
    fn strict_rejects_false_purity_claim() {
        let mut b = SanBuilder::new("m");
        b.validate_strict();
        let p = b.place_with_tokens("p", 1).unwrap();
        let g = b.input_gate("sneaky", |_| true, move |m| m.add_tokens(p, 1));
        b.claim_pure_predicate(g);
        b.timed_activity("t", Delay::exponential(1.0))
            .unwrap()
            .input_place(p)
            .input_gate(g)
            .output_place(p)
            .build()
            .unwrap();
        let err = b.build().unwrap_err();
        match err {
            SanError::StrictValidation { diagnostics, .. } => {
                assert!(
                    diagnostics.iter().any(|d| d.contains("pure predicate")),
                    "{diagnostics:?}"
                );
            }
            other => panic!("expected StrictValidation, got {other:?}"),
        }
    }

    #[test]
    fn strict_rejects_undeclared_gate_access() {
        let mut b = SanBuilder::new("m");
        b.validate_strict();
        let p = b.place_with_tokens("p", 1).unwrap();
        let declared = b.place_with_tokens("declared", 1).unwrap();
        let hidden = b.place_with_tokens("hidden", 1).unwrap();
        let g = b.input_gate_touching(
            "partial",
            [declared],
            move |m| m.is_marked(declared),
            move |m| m.add_tokens(hidden, 1),
        );
        b.timed_activity("t", Delay::exponential(1.0))
            .unwrap()
            .input_place(p)
            .input_gate(g)
            .output_place(p)
            .build()
            .unwrap();
        let err = b.build().unwrap_err();
        match err {
            SanError::StrictValidation { diagnostics, .. } => {
                assert!(
                    diagnostics.iter().any(|d| d.contains("hidden")),
                    "{diagnostics:?}"
                );
            }
            other => panic!("expected StrictValidation, got {other:?}"),
        }
    }

    #[test]
    fn strict_skips_marking_functions_of_unfireable_activities() {
        // The og's function would panic at the initial marking (removes
        // a token that is not there); strict validation must not run it
        // because its activity cannot fire from the initial marking.
        let mut b = SanBuilder::new("m");
        b.validate_strict();
        add_cycle(&mut b);
        let q = b.find_place("q").unwrap();
        let r = b.place("r").unwrap();
        let og = b.output_gate_touching("drain", [q], move |m| {
            m.remove_tokens(q, 1);
        });
        b.timed_activity("qr", Delay::exponential(1.0))
            .unwrap()
            .input_place(q)
            .output_place(r)
            .output_gate(og)
            .build()
            .unwrap();
        b.timed_activity("rq", Delay::exponential(1.0))
            .unwrap()
            .input_place(r)
            .output_place(q)
            .build()
            .unwrap();
        // q is unmarked initially, so `qr` cannot fire and `drain` must
        // not be traced. The model still builds strictly.
        assert!(b.build().is_ok());
    }

    #[test]
    fn non_strict_build_accepts_orphan_place() {
        let mut b = SanBuilder::new("m");
        add_cycle(&mut b);
        b.place("orphan").unwrap();
        assert!(b.build().is_ok());
    }
}
