//! Incremental construction of SAN models, including `Join`/`Rep`-style
//! composition through namespaces and shared places.

use std::collections::HashMap;

use crate::activity::{Activity, ActivityId, Case, CaseProb, Timing};
use crate::delay::Delay;
use crate::error::SanError;
use crate::gate::{InputGate, InputGateId, OutputGate, OutputGateId};
use crate::marking::Marking;
use crate::model::SanModel;
use crate::place::{PlaceDecl, PlaceId, PlaceKind};

/// Builder for [`SanModel`]s.
///
/// Composition follows the Möbius pattern: `Rep` and `Join` do not copy
/// submodels, they *merge state* — replicas share designated places and
/// keep private copies of the rest. Here that is expressed directly:
///
/// * [`SanBuilder::join`] opens a named scope; places and activities
///   declared inside get a `scope.`-qualified name;
/// * [`SanBuilder::replicate`] runs a module-building closure `count`
///   times under `name[i].` scopes;
/// * [`SanBuilder::shared_place`] (and variants) create-or-look-up a
///   place by *global* name, ignoring the current scope — these are the
///   shared state variables of a Join.
///
/// # Example
///
/// ```
/// use ahs_san::{Delay, SanBuilder};
///
/// let mut b = SanBuilder::new("pool");
/// let bus = b.shared_place("bus")?; // shared by all replicas
/// b.replicate("worker", 3, |b, _i| {
///     let idle = b.place_with_tokens("idle", 1)?;
///     b.timed_activity("work", Delay::exponential(1.0))?
///         .input_place(idle)
///         .output_place(bus)
///         .build()?;
///     Ok(())
/// })?;
/// let model = b.build()?;
/// assert_eq!(model.num_places(), 4); // bus + 3 private `idle`s
/// assert_eq!(model.num_activities(), 3);
/// # Ok::<(), ahs_san::SanError>(())
/// ```
pub struct SanBuilder {
    name: String,
    prefix: Vec<String>,
    places: Vec<PlaceDecl>,
    place_names: HashMap<String, PlaceId>,
    input_gates: Vec<InputGate>,
    output_gates: Vec<OutputGate>,
    activities: Vec<Activity>,
    activity_names: HashMap<String, ActivityId>,
}

impl SanBuilder {
    /// Creates an empty builder for a model with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        SanBuilder {
            name: name.into(),
            prefix: Vec::new(),
            places: Vec::new(),
            place_names: HashMap::new(),
            input_gates: Vec::new(),
            output_gates: Vec::new(),
            activities: Vec::new(),
            activity_names: HashMap::new(),
        }
    }

    fn qualify(&self, name: &str) -> String {
        if self.prefix.is_empty() {
            name.to_owned()
        } else {
            format!("{}.{}", self.prefix.join("."), name)
        }
    }

    fn add_place(&mut self, qualified: String, decl: PlaceDecl) -> Result<PlaceId, SanError> {
        if self.place_names.contains_key(&qualified) {
            return Err(SanError::DuplicatePlace { name: qualified });
        }
        let id = PlaceId(self.places.len());
        self.place_names.insert(qualified, id);
        self.places.push(decl);
        Ok(id)
    }

    /// Declares an empty simple place in the current scope.
    ///
    /// # Errors
    ///
    /// Returns [`SanError::DuplicatePlace`] if the qualified name exists.
    pub fn place(&mut self, name: &str) -> Result<PlaceId, SanError> {
        self.place_with_tokens(name, 0)
    }

    /// Declares a simple place with an initial token count.
    ///
    /// # Errors
    ///
    /// Returns [`SanError::DuplicatePlace`] if the qualified name exists.
    pub fn place_with_tokens(&mut self, name: &str, tokens: u64) -> Result<PlaceId, SanError> {
        let q = self.qualify(name);
        self.add_place(
            q.clone(),
            PlaceDecl {
                name: q,
                kind: PlaceKind::Simple,
                initial_tokens: tokens,
                initial_array: vec![],
            },
        )
    }

    /// Declares an extended (array) place of the given length,
    /// initialized to zeros.
    ///
    /// # Errors
    ///
    /// Returns [`SanError::DuplicatePlace`] if the qualified name exists.
    pub fn extended_place(&mut self, name: &str, len: usize) -> Result<PlaceId, SanError> {
        self.extended_place_init(name, vec![0; len])
    }

    /// Declares an extended place with explicit initial contents.
    ///
    /// # Errors
    ///
    /// Returns [`SanError::DuplicatePlace`] if the qualified name exists.
    pub fn extended_place_init(
        &mut self,
        name: &str,
        initial: Vec<i64>,
    ) -> Result<PlaceId, SanError> {
        let q = self.qualify(name);
        self.add_place(
            q.clone(),
            PlaceDecl {
                name: q,
                kind: PlaceKind::Extended { len: initial.len() },
                initial_tokens: 0,
                initial_array: initial,
            },
        )
    }

    /// Creates or looks up a *shared* simple place by global name
    /// (ignores the current scope). The first call creates the place
    /// with zero tokens; later calls return the same handle.
    ///
    /// # Errors
    ///
    /// Returns [`SanError::DuplicatePlace`] if the global name exists
    /// but refers to an extended place.
    pub fn shared_place(&mut self, name: &str) -> Result<PlaceId, SanError> {
        self.shared_place_with_tokens(name, 0)
    }

    /// Creates or looks up a shared simple place; `tokens` only applies
    /// on first creation.
    ///
    /// # Errors
    ///
    /// Returns [`SanError::DuplicatePlace`] on kind mismatch.
    pub fn shared_place_with_tokens(
        &mut self,
        name: &str,
        tokens: u64,
    ) -> Result<PlaceId, SanError> {
        if let Some(&id) = self.place_names.get(name) {
            if self.places[id.0].kind != PlaceKind::Simple {
                return Err(SanError::DuplicatePlace { name: name.into() });
            }
            return Ok(id);
        }
        self.add_place(
            name.to_owned(),
            PlaceDecl {
                name: name.to_owned(),
                kind: PlaceKind::Simple,
                initial_tokens: tokens,
                initial_array: vec![],
            },
        )
    }

    /// Creates or looks up a shared extended place by global name;
    /// `initial` only applies on first creation.
    ///
    /// # Errors
    ///
    /// Returns [`SanError::DuplicatePlace`] on kind or length mismatch.
    pub fn shared_extended_place(
        &mut self,
        name: &str,
        initial: Vec<i64>,
    ) -> Result<PlaceId, SanError> {
        if let Some(&id) = self.place_names.get(name) {
            if self.places[id.0].kind != (PlaceKind::Extended { len: initial.len() }) {
                return Err(SanError::DuplicatePlace { name: name.into() });
            }
            return Ok(id);
        }
        self.add_place(
            name.to_owned(),
            PlaceDecl {
                name: name.to_owned(),
                kind: PlaceKind::Extended { len: initial.len() },
                initial_tokens: 0,
                initial_array: initial,
            },
        )
    }

    /// Looks up a place by fully-qualified global name.
    pub fn find_place(&self, qualified_name: &str) -> Option<PlaceId> {
        self.place_names.get(qualified_name).copied()
    }

    /// Registers an input gate (enabling predicate + marking function).
    pub fn input_gate<P, F>(&mut self, name: &str, predicate: P, function: F) -> InputGateId
    where
        P: Fn(&Marking) -> bool + Send + Sync + 'static,
        F: Fn(&mut Marking) + Send + Sync + 'static,
    {
        let id = InputGateId(self.input_gates.len());
        self.input_gates.push(InputGate {
            name: self.qualify(name),
            predicate: Box::new(predicate),
            function: Box::new(function),
        });
        id
    }

    /// Registers a pure-predicate input gate (identity marking function).
    pub fn predicate_gate<P>(&mut self, name: &str, predicate: P) -> InputGateId
    where
        P: Fn(&Marking) -> bool + Send + Sync + 'static,
    {
        self.input_gate(name, predicate, |_| {})
    }

    /// Registers an output gate (marking function).
    pub fn output_gate<F>(&mut self, name: &str, function: F) -> OutputGateId
    where
        F: Fn(&mut Marking) + Send + Sync + 'static,
    {
        let id = OutputGateId(self.output_gates.len());
        self.output_gates.push(OutputGate {
            name: self.qualify(name),
            function: Box::new(function),
        });
        id
    }

    /// Starts a timed activity with the given delay distribution.
    ///
    /// # Errors
    ///
    /// Returns [`SanError::DuplicateActivity`] on a name clash or
    /// [`SanError::InvalidDelay`] on bad distribution parameters.
    pub fn timed_activity(
        &mut self,
        name: &str,
        delay: Delay,
    ) -> Result<ActivityBuilder<'_>, SanError> {
        let q = self.qualify(name);
        if self.activity_names.contains_key(&q) {
            return Err(SanError::DuplicateActivity { name: q });
        }
        if let Err(reason) = delay.validate() {
            return Err(SanError::InvalidDelay { activity: q, reason });
        }
        Ok(ActivityBuilder::new(self, q, Timing::Timed(delay)))
    }

    /// Starts an instantaneous activity with selection priority and
    /// tie-break weight.
    ///
    /// # Errors
    ///
    /// Returns [`SanError::DuplicateActivity`] on a name clash or
    /// [`SanError::InvalidWeight`] if `weight` is not positive.
    pub fn instant_activity(
        &mut self,
        name: &str,
        priority: u32,
        weight: f64,
    ) -> Result<ActivityBuilder<'_>, SanError> {
        let q = self.qualify(name);
        if self.activity_names.contains_key(&q) {
            return Err(SanError::DuplicateActivity { name: q });
        }
        if !weight.is_finite() || weight <= 0.0 {
            return Err(SanError::InvalidWeight { activity: q, weight });
        }
        Ok(ActivityBuilder::new(self, q, Timing::Instantaneous { priority, weight }))
    }

    /// Runs `f` inside a named scope (`Join` composition): declarations
    /// made by `f` are qualified with `scope.`.
    ///
    /// # Errors
    ///
    /// Propagates any error from `f`.
    pub fn join<F>(&mut self, scope: &str, f: F) -> Result<(), SanError>
    where
        F: FnOnce(&mut SanBuilder) -> Result<(), SanError>,
    {
        self.prefix.push(scope.to_owned());
        let result = f(self);
        self.prefix.pop();
        result
    }

    /// Runs `f` `count` times under scopes `scope[0]` … `scope[count-1]`
    /// (`Rep` composition). Shared places created inside via
    /// [`SanBuilder::shared_place`] are common to all replicas; scoped
    /// places are private per replica.
    ///
    /// # Errors
    ///
    /// Propagates the first error from `f`.
    pub fn replicate<F>(&mut self, scope: &str, count: usize, mut f: F) -> Result<(), SanError>
    where
        F: FnMut(&mut SanBuilder, usize) -> Result<(), SanError>,
    {
        for i in 0..count {
            self.join(&format!("{scope}[{i}]"), |b| f(b, i))?;
        }
        Ok(())
    }

    /// Finalizes the model.
    ///
    /// # Errors
    ///
    /// Returns [`SanError::EmptyModel`] if no places or no activities
    /// were declared.
    pub fn build(self) -> Result<SanModel, SanError> {
        if self.places.is_empty() || self.activities.is_empty() {
            return Err(SanError::EmptyModel);
        }
        let initial = Marking::from_decls(&self.places);
        Ok(SanModel::new(
            self.name,
            self.places,
            self.input_gates,
            self.output_gates,
            self.activities,
            initial,
        ))
    }
}

impl std::fmt::Debug for SanBuilder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SanBuilder")
            .field("name", &self.name)
            .field("places", &self.places.len())
            .field("activities", &self.activities.len())
            .finish_non_exhaustive()
    }
}

/// Builder for a single activity; created by
/// [`SanBuilder::timed_activity`] / [`SanBuilder::instant_activity`].
///
/// Output arcs and gates attach to the *current case*. Until
/// [`ActivityBuilder::case`] is called an implicit probability-1 case is
/// used; calling `case` starts an explicit case (the implicit case must
/// then be empty).
#[must_use = "call .build() to register the activity"]
pub struct ActivityBuilder<'b> {
    builder: &'b mut SanBuilder,
    name: String,
    timing: Timing,
    input_arcs: Vec<(PlaceId, u64)>,
    input_gates: Vec<InputGateId>,
    cases: Vec<Case>,
    explicit_cases: bool,
}

impl<'b> ActivityBuilder<'b> {
    fn new(builder: &'b mut SanBuilder, name: String, timing: Timing) -> Self {
        ActivityBuilder {
            builder,
            name,
            timing,
            input_arcs: Vec::new(),
            input_gates: Vec::new(),
            cases: vec![Case {
                probability: CaseProb::Const(1.0),
                output_arcs: Vec::new(),
                output_gates: Vec::new(),
            }],
            explicit_cases: false,
        }
    }

    /// Adds an input arc requiring (and consuming) one token.
    pub fn input_place(self, place: PlaceId) -> Self {
        self.input_arc(place, 1)
    }

    /// Adds an input arc requiring (and consuming) `tokens` tokens.
    pub fn input_arc(mut self, place: PlaceId, tokens: u64) -> Self {
        self.input_arcs.push((place, tokens));
        self
    }

    /// Attaches an input gate.
    pub fn input_gate(mut self, gate: InputGateId) -> Self {
        self.input_gates.push(gate);
        self
    }

    /// Starts a new case with a fixed probability.
    pub fn case(mut self, probability: f64) -> Self {
        self.start_case(CaseProb::Const(probability));
        self
    }

    /// Starts a new case with a marking-dependent probability.
    pub fn case_fn<F>(mut self, probability: F) -> Self
    where
        F: Fn(&Marking) -> f64 + Send + Sync + 'static,
    {
        self.start_case(CaseProb::MarkingDependent(Box::new(probability)));
        self
    }

    fn start_case(&mut self, probability: CaseProb) {
        if !self.explicit_cases {
            // Replace the implicit case — it must still be empty.
            let implicit = &self.cases[0];
            assert!(
                implicit.output_arcs.is_empty() && implicit.output_gates.is_empty(),
                "activity `{}`: outputs were attached before the first explicit case",
                self.name
            );
            self.cases.clear();
            self.explicit_cases = true;
        }
        self.cases.push(Case {
            probability,
            output_arcs: Vec::new(),
            output_gates: Vec::new(),
        });
    }

    fn current_case(&mut self) -> &mut Case {
        self.cases.last_mut().expect("at least one case always exists")
    }

    /// Adds an output arc depositing one token (to the current case).
    pub fn output_place(self, place: PlaceId) -> Self {
        self.output_arc(place, 1)
    }

    /// Adds an output arc depositing `tokens` tokens (current case).
    pub fn output_arc(mut self, place: PlaceId, tokens: u64) -> Self {
        self.current_case().output_arcs.push((place, tokens));
        self
    }

    /// Attaches an output gate (current case).
    pub fn output_gate(mut self, gate: OutputGateId) -> Self {
        self.current_case().output_gates.push(gate);
        self
    }

    /// Registers the activity with the model builder.
    ///
    /// # Errors
    ///
    /// Returns [`SanError::NoCases`] if explicit cases were started but
    /// none completed, or [`SanError::InvalidCaseDistribution`] if all
    /// case probabilities are constants that do not sum to 1 (within
    /// 1e-9; marking-dependent distributions are validated at firing
    /// time instead).
    pub fn build(self) -> Result<ActivityId, SanError> {
        if self.cases.is_empty() {
            return Err(SanError::NoCases { activity: self.name });
        }
        let const_sum: Option<f64> = self
            .cases
            .iter()
            .map(|c| match &c.probability {
                CaseProb::Const(p) => Some(*p),
                CaseProb::MarkingDependent(_) => None,
            })
            .sum();
        if let Some(sum) = const_sum {
            if (sum - 1.0).abs() > 1e-9 {
                return Err(SanError::InvalidCaseDistribution {
                    activity: self.name,
                    sum,
                });
            }
        }
        let id = ActivityId(self.builder.activities.len());
        self.builder.activity_names.insert(self.name.clone(), id);
        self.builder.activities.push(Activity {
            name: self.name,
            timing: self.timing,
            input_arcs: self.input_arcs,
            input_gates: self.input_gates,
            cases: self.cases,
        });
        Ok(id)
    }
}

impl std::fmt::Debug for ActivityBuilder<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ActivityBuilder")
            .field("name", &self.name)
            .field("cases", &self.cases.len())
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duplicate_place_rejected() {
        let mut b = SanBuilder::new("m");
        b.place("p").unwrap();
        assert_eq!(
            b.place("p").unwrap_err(),
            SanError::DuplicatePlace { name: "p".into() }
        );
    }

    #[test]
    fn scoped_names_do_not_clash() {
        let mut b = SanBuilder::new("m");
        b.place("p").unwrap();
        b.join("sub", |b| {
            b.place("p")?; // qualified as sub.p
            Ok(())
        })
        .unwrap();
        assert!(b.find_place("p").is_some());
        assert!(b.find_place("sub.p").is_some());
    }

    #[test]
    fn shared_place_is_shared_across_replicas() {
        let mut b = SanBuilder::new("m");
        let mut seen = Vec::new();
        b.replicate("r", 3, |b, _| {
            seen.push(b.shared_place("bus")?);
            b.place("private")?;
            Ok(())
        })
        .unwrap();
        assert_eq!(seen[0], seen[1]);
        assert_eq!(seen[1], seen[2]);
        assert!(b.find_place("r[0].private").is_some());
        assert!(b.find_place("r[2].private").is_some());
        assert!(b.find_place("r[3].private").is_none());
    }

    #[test]
    fn shared_place_kind_mismatch_rejected() {
        let mut b = SanBuilder::new("m");
        b.shared_extended_place("arr", vec![0, 0]).unwrap();
        assert!(b.shared_place("arr").is_err());
        assert!(b.shared_extended_place("arr", vec![0]).is_err());
        assert!(b.shared_extended_place("arr", vec![5, 5]).is_ok());
    }

    #[test]
    fn empty_model_rejected() {
        let b = SanBuilder::new("m");
        assert_eq!(b.build().unwrap_err(), SanError::EmptyModel);
    }

    #[test]
    fn invalid_rate_rejected() {
        let mut b = SanBuilder::new("m");
        b.place("p").unwrap();
        let err = b.timed_activity("a", Delay::exponential(-1.0)).unwrap_err();
        assert!(matches!(err, SanError::InvalidDelay { .. }));
    }

    #[test]
    fn case_probabilities_must_sum_to_one() {
        let mut b = SanBuilder::new("m");
        let p = b.place_with_tokens("p", 1).unwrap();
        let err = b
            .timed_activity("a", Delay::exponential(1.0))
            .unwrap()
            .input_place(p)
            .case(0.3)
            .case(0.3)
            .build()
            .unwrap_err();
        assert!(matches!(err, SanError::InvalidCaseDistribution { .. }));
    }

    #[test]
    fn duplicate_activity_rejected() {
        let mut b = SanBuilder::new("m");
        let p = b.place_with_tokens("p", 1).unwrap();
        b.timed_activity("a", Delay::exponential(1.0))
            .unwrap()
            .input_place(p)
            .build()
            .unwrap();
        assert!(matches!(
            b.timed_activity("a", Delay::exponential(1.0)),
            Err(SanError::DuplicateActivity { .. })
        ));
    }

    #[test]
    fn instant_weight_validated() {
        let mut b = SanBuilder::new("m");
        b.place("p").unwrap();
        assert!(matches!(
            b.instant_activity("i", 0, 0.0),
            Err(SanError::InvalidWeight { .. })
        ));
    }
}
