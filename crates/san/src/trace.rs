//! Recording which places a closure reads and writes.
//!
//! Gate predicates and marking functions are opaque Rust closures, so a
//! static analyzer cannot see which places they touch. This module makes
//! the [`Marking`](crate::Marking) accessors observable: while a
//! [`record`] call is active on the current thread, every place access
//! made through a marking is logged into an [`AccessTrace`].
//!
//! The linter (`ahs-lint`) uses this as an *instrumented shadow marking*:
//! it clones a reachable marking, evaluates a gate against it under
//! [`record`], and compares the observed read/write sets against the
//! gate's declared places (see
//! [`SanBuilder::input_gate_touching`](crate::SanBuilder::input_gate_touching)).
//!
//! Recording is thread-local. When no thread is recording — the
//! simulators' hot loop — each accessor call costs a single relaxed
//! atomic load of a process-wide counter, so tracing support adds no
//! measurable overhead to simulation.

use std::cell::RefCell;
use std::collections::BTreeSet;
use std::sync::atomic::{AtomicUsize, Ordering};

use crate::place::PlaceId;

/// The set of places a traced closure read and wrote.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AccessTrace {
    reads: BTreeSet<PlaceId>,
    writes: BTreeSet<PlaceId>,
}

impl AccessTrace {
    /// Places read (inspected) during the traced call.
    pub fn reads(&self) -> impl Iterator<Item = PlaceId> + '_ {
        self.reads.iter().copied()
    }

    /// Places written (mutated or handed out mutably) during the traced
    /// call.
    pub fn writes(&self) -> impl Iterator<Item = PlaceId> + '_ {
        self.writes.iter().copied()
    }

    /// Every place touched in any way.
    pub fn touched(&self) -> BTreeSet<PlaceId> {
        self.reads.union(&self.writes).copied().collect()
    }

    /// Whether the traced call wrote nothing.
    pub fn is_read_only(&self) -> bool {
        self.writes.is_empty()
    }

    /// Whether `p` was read.
    pub fn read(&self, p: PlaceId) -> bool {
        self.reads.contains(&p)
    }

    /// Whether `p` was written.
    pub fn wrote(&self, p: PlaceId) -> bool {
        self.writes.contains(&p)
    }
}

thread_local! {
    static ACTIVE: RefCell<Option<AccessTrace>> = const { RefCell::new(None) };
}

/// Number of threads currently inside [`record`]. The accessors check
/// this (one relaxed load) before touching thread-local storage, so the
/// common not-recording case stays branch-predictable and cheap.
static RECORDING: AtomicUsize = AtomicUsize::new(0);

/// Restores the previous per-thread trace and the global counter even if
/// the traced closure panics.
struct RecordGuard {
    previous: Option<AccessTrace>,
    restored: bool,
}

impl RecordGuard {
    fn finish(&mut self) -> AccessTrace {
        let trace = ACTIVE.with(|slot| slot.replace(self.previous.take()));
        RECORDING.fetch_sub(1, Ordering::SeqCst);
        self.restored = true;
        trace.expect("access trace vanished while recording")
    }
}

impl Drop for RecordGuard {
    fn drop(&mut self) {
        if !self.restored {
            ACTIVE.with(|slot| slot.replace(self.previous.take()));
            RECORDING.fetch_sub(1, Ordering::SeqCst);
        }
    }
}

/// Runs `f` with access recording enabled on this thread and returns its
/// result together with the observed [`AccessTrace`].
///
/// Nested calls are not supported: the inner call records into a fresh
/// trace and the outer trace resumes (without the inner accesses) when
/// the inner call returns.
pub fn record<R>(f: impl FnOnce() -> R) -> (R, AccessTrace) {
    RECORDING.fetch_add(1, Ordering::SeqCst);
    let previous = ACTIVE.with(|slot| slot.replace(Some(AccessTrace::default())));
    let mut guard = RecordGuard {
        previous,
        restored: false,
    };
    let result = f();
    let trace = guard.finish();
    (result, trace)
}

#[inline]
pub(crate) fn note_read(p: PlaceId) {
    if RECORDING.load(Ordering::Relaxed) == 0 {
        return;
    }
    ACTIVE.with(|slot| {
        if let Some(trace) = slot.borrow_mut().as_mut() {
            trace.reads.insert(p);
        }
    });
}

#[inline]
pub(crate) fn note_write(p: PlaceId) {
    if RECORDING.load(Ordering::Relaxed) == 0 {
        return;
    }
    ACTIVE.with(|slot| {
        if let Some(trace) = slot.borrow_mut().as_mut() {
            trace.writes.insert(p);
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::marking::Marking;
    use crate::place::{PlaceDecl, PlaceKind};

    fn marking() -> Marking {
        Marking::from_decls(&[
            PlaceDecl {
                name: "a".into(),
                kind: PlaceKind::Simple,
                initial_tokens: 1,
                initial_array: vec![],
            },
            PlaceDecl {
                name: "b".into(),
                kind: PlaceKind::Simple,
                initial_tokens: 0,
                initial_array: vec![],
            },
            PlaceDecl {
                name: "arr".into(),
                kind: PlaceKind::Extended { len: 2 },
                initial_tokens: 0,
                initial_array: vec![0, 0],
            },
        ])
    }

    #[test]
    fn records_reads_and_writes() {
        let mut m = marking();
        let (_, trace) = record(|| {
            let _ = m.tokens(PlaceId(0));
            m.set_tokens(PlaceId(1), 3);
            m.array_mut(PlaceId(2))[0] = 7;
        });
        assert!(trace.read(PlaceId(0)));
        assert!(!trace.wrote(PlaceId(0)));
        assert!(trace.wrote(PlaceId(1)));
        assert!(trace.wrote(PlaceId(2)));
        assert_eq!(trace.touched().len(), 3);
        assert!(!trace.is_read_only());
    }

    #[test]
    fn no_recording_outside_record() {
        let m = marking();
        let _ = m.tokens(PlaceId(0));
        let (_, trace) = record(|| {});
        assert_eq!(trace, AccessTrace::default());
        assert!(trace.is_read_only());
    }

    #[test]
    fn traces_do_not_leak_between_calls() {
        let mut m = marking();
        let (_, first) = record(|| m.set_tokens(PlaceId(0), 0));
        let (_, second) = record(|| {
            let _ = m.tokens(PlaceId(1));
        });
        assert!(first.wrote(PlaceId(0)));
        assert!(!second.wrote(PlaceId(0)));
        assert!(second.read(PlaceId(1)));
        assert_eq!(second.reads().count(), 1);
        assert_eq!(second.writes().count(), 0);
    }
}
