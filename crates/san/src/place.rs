//! Place declarations and identifiers.

/// Opaque handle to a place within a [`SanModel`](crate::SanModel).
///
/// Handles are only meaningful for the model (or
/// [`SanBuilder`](crate::SanBuilder)) that created them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PlaceId(pub(crate) usize);

impl PlaceId {
    /// Index of this place in the model's place table.
    pub fn index(self) -> usize {
        self.0
    }
}

/// The kind of state a place holds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PlaceKind {
    /// A plain token counter (standard Petri-net place).
    Simple,
    /// A Möbius-style *extended place*: a fixed-length array of signed
    /// integers. The paper uses these for the `platoon1`/`platoon2`
    /// position arrays and the per-class maneuver lists of the Severity
    /// model.
    Extended {
        /// Number of array slots.
        len: usize,
    },
}

/// Declaration of one place: name, kind, and initial contents.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct PlaceDecl {
    pub(crate) name: String,
    pub(crate) kind: PlaceKind,
    pub(crate) initial_tokens: u64,
    pub(crate) initial_array: Vec<i64>,
}

impl PlaceDecl {
    /// The fully-qualified (namespaced) place name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The place kind.
    pub fn kind(&self) -> PlaceKind {
        self.kind
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn place_id_roundtrip() {
        let id = PlaceId(7);
        assert_eq!(id.index(), 7);
        assert_eq!(id, PlaceId(7));
        assert!(PlaceId(3) < PlaceId(4));
    }

    #[test]
    fn kinds_compare() {
        assert_ne!(PlaceKind::Simple, PlaceKind::Extended { len: 1 });
        assert_eq!(
            PlaceKind::Extended { len: 2 },
            PlaceKind::Extended { len: 2 }
        );
    }
}
