//! Error type of the SAN crate.

/// Errors arising while building or executing a SAN model.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SanError {
    /// A place with the same fully-qualified name already exists with a
    /// different declaration.
    DuplicatePlace {
        /// The conflicting name.
        name: String,
    },
    /// An activity with the same fully-qualified name already exists.
    DuplicateActivity {
        /// The conflicting name.
        name: String,
    },
    /// A delay distribution had invalid parameters.
    InvalidDelay {
        /// Activity name.
        activity: String,
        /// What was wrong.
        reason: String,
    },
    /// An activity was declared without any case.
    NoCases {
        /// Activity name.
        activity: String,
    },
    /// Case probabilities evaluated to an invalid distribution.
    InvalidCaseDistribution {
        /// Activity name.
        activity: String,
        /// Sum of the evaluated probabilities.
        sum: f64,
    },
    /// An instantaneous-activity cascade did not stabilize within the
    /// iteration budget (the net has an instantaneous livelock).
    InstantaneousLivelock {
        /// Iterations attempted before giving up.
        iterations: usize,
    },
    /// An instantaneous activity has a non-positive weight.
    InvalidWeight {
        /// Activity name.
        activity: String,
        /// The offending weight.
        weight: f64,
    },
    /// The model has no places or no activities.
    EmptyModel,
    /// Strict validation (see
    /// [`SanBuilder::validate_strict`](crate::SanBuilder::validate_strict))
    /// found defects at build time.
    StrictValidation {
        /// Model name.
        model: String,
        /// One human-readable message per defect.
        diagnostics: Vec<String>,
    },
}

impl std::fmt::Display for SanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SanError::DuplicatePlace { name } => {
                write!(f, "duplicate place declaration for `{name}`")
            }
            SanError::DuplicateActivity { name } => {
                write!(f, "duplicate activity declaration for `{name}`")
            }
            SanError::InvalidDelay { activity, reason } => {
                write!(f, "invalid delay on activity `{activity}`: {reason}")
            }
            SanError::NoCases { activity } => {
                write!(f, "activity `{activity}` has no cases")
            }
            SanError::InvalidCaseDistribution { activity, sum } => {
                write!(
                    f,
                    "case probabilities of activity `{activity}` sum to {sum}, expected 1"
                )
            }
            SanError::InstantaneousLivelock { iterations } => {
                write!(
                    f,
                    "instantaneous activities did not stabilize after {iterations} firings"
                )
            }
            SanError::InvalidWeight { activity, weight } => {
                write!(
                    f,
                    "instantaneous activity `{activity}` has non-positive weight {weight}"
                )
            }
            SanError::EmptyModel => write!(f, "model has no places or no activities"),
            SanError::StrictValidation { model, diagnostics } => {
                write!(
                    f,
                    "strict validation of model `{model}` failed with {} defect(s): {}",
                    diagnostics.len(),
                    diagnostics.join("; ")
                )
            }
        }
    }
}

impl std::error::Error for SanError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_specific() {
        let e = SanError::DuplicatePlace { name: "IN".into() };
        assert_eq!(e.to_string(), "duplicate place declaration for `IN`");
        let e = SanError::InstantaneousLivelock { iterations: 10 };
        assert!(e.to_string().contains("10"));
    }

    #[test]
    fn error_is_std_error() {
        fn assert_err<E: std::error::Error + Send + Sync + 'static>() {}
        assert_err::<SanError>();
    }
}
