//! Static activity dependency graph for incremental enablement.
//!
//! A firing only changes the marking of the places in the firer's
//! *write-set*, so only activities whose *read-set* (the places their
//! enabling condition inspects) intersects that write-set can change
//! enabledness. This module derives both sets per activity at model
//! build time and materialises the resulting `affects` relation, which
//! the executors in `ahs-des` use to re-evaluate a handful of
//! activities per firing instead of rescanning the whole model (see
//! `docs/performance.md`).
//!
//! Read and write sets come from declared structure only:
//!
//! * **read-set** — input-arc places plus the declared reads of every
//!   attached input gate: the split `reads` when the gate was built
//!   with `input_gate_touching_split`, otherwise its whole `touches`
//!   set (over-approximation is safe);
//! * **write-set** — input-arc places (tokens are removed), input-gate
//!   declared writes (the split `writes`; empty for pure predicates;
//!   otherwise the whole `touches` set), every case's output-arc
//!   places, and every case's output-gate `touches`.
//!
//! Gate `touches` declarations are verified against instrumented
//! executions by the linter (`gate-purity` and `write-set` passes). If
//! *any* gate attached to an activity lacks a declaration the graph is
//! **unsound**: the sets cannot be trusted, and every consumer must
//! fall back to full rescans ([`DependencyGraph::is_sound`] is the
//! gate). The fallback is behavioural only — results are bitwise
//! identical either way, slower.

use crate::activity::{Activity, ActivityId};
use crate::gate::{InputGate, OutputGate};
use crate::place::PlaceId;

/// Word-parallel place set used during construction.
#[derive(Clone)]
struct PlaceBits(Vec<u64>);

impl PlaceBits {
    fn new(num_places: usize) -> Self {
        PlaceBits(vec![0; num_places.div_ceil(64)])
    }

    fn insert(&mut self, p: PlaceId) {
        self.0[p.index() / 64] |= 1 << (p.index() % 64);
    }

    fn intersects(&self, other: &PlaceBits) -> bool {
        self.0.iter().zip(&other.0).any(|(a, b)| a & b != 0)
    }

    fn to_places(&self) -> Vec<PlaceId> {
        let mut out = Vec::new();
        for (w, word) in self.0.iter().enumerate() {
            let mut bits = *word;
            while bits != 0 {
                let b = bits.trailing_zeros() as usize;
                out.push(PlaceId(w * 64 + b));
                bits &= bits - 1;
            }
        }
        out
    }
}

/// The static dependency structure of a [`SanModel`](crate::SanModel).
///
/// Built once by the model constructor; immutable afterwards. The
/// `affects` relation is stored in compressed sparse rows (one flat
/// index vector plus offsets), so lookups are a slice borrow with no
/// per-query allocation.
pub struct DependencyGraph {
    sound: bool,
    /// CSR offsets into `affects`; length `num_activities + 1`.
    affects_offsets: Vec<u32>,
    /// Concatenated, ascending lists of affected activity indices.
    affects: Vec<u32>,
    /// Per-activity sorted read-set (declared enabling inputs).
    reads: Vec<Vec<PlaceId>>,
    /// Per-activity sorted write-set (declared firing outputs).
    writes: Vec<Vec<PlaceId>>,
}

impl DependencyGraph {
    pub(crate) fn build(
        activities: &[Activity],
        input_gates: &[InputGate],
        output_gates: &[OutputGate],
        num_places: usize,
    ) -> Self {
        let n = activities.len();
        let mut sound = true;
        let mut read_bits = vec![PlaceBits::new(num_places); n];
        let mut write_bits = vec![PlaceBits::new(num_places); n];

        for (i, act) in activities.iter().enumerate() {
            for &(p, _) in &act.input_arcs {
                read_bits[i].insert(p);
                write_bits[i].insert(p);
            }
            for g in &act.input_gates {
                let gate = &input_gates[g.0];
                match (gate.declared_reads(), gate.declared_writes()) {
                    (Some(reads), Some(writes)) => {
                        for &p in reads {
                            read_bits[i].insert(p);
                        }
                        for &p in writes {
                            write_bits[i].insert(p);
                        }
                    }
                    _ => sound = false,
                }
            }
            for case in &act.cases {
                for &(p, _) in &case.output_arcs {
                    write_bits[i].insert(p);
                }
                for g in &case.output_gates {
                    match output_gates[g.0].declared_touches() {
                        Some(places) => {
                            for &p in places {
                                write_bits[i].insert(p);
                            }
                        }
                        None => sound = false,
                    }
                }
            }
        }

        let reads: Vec<Vec<PlaceId>> = read_bits.iter().map(PlaceBits::to_places).collect();
        let writes: Vec<Vec<PlaceId>> = write_bits.iter().map(PlaceBits::to_places).collect();

        let mut affects_offsets = Vec::with_capacity(n + 1);
        let mut affects = Vec::new();
        affects_offsets.push(0);
        if sound {
            for (firer, fired_writes) in write_bits.iter().enumerate() {
                for (reader, reader_reads) in read_bits.iter().enumerate() {
                    // The firer itself is always affected: its own input
                    // tokens moved even when the declared sets are empty.
                    if reader == firer || reader_reads.intersects(fired_writes) {
                        affects.push(reader as u32);
                    }
                }
                affects_offsets.push(affects.len() as u32);
            }
        } else {
            affects_offsets.resize(n + 1, 0);
        }

        DependencyGraph {
            sound,
            affects_offsets,
            affects,
            reads,
            writes,
        }
    }

    /// Whether every gate attached to an activity carries a `touches`
    /// declaration, making the derived sets trustworthy. When `false`
    /// the `affects` relation is empty and consumers must rescan.
    pub fn is_sound(&self) -> bool {
        self.sound
    }

    /// Activity indices whose enabledness may change when `a` fires,
    /// in ascending order (always contains `a` itself). Empty when the
    /// graph is unsound.
    pub fn affected_by(&self, a: ActivityId) -> &[u32] {
        let lo = self.affects_offsets[a.0] as usize;
        let hi = self.affects_offsets[a.0 + 1] as usize;
        &self.affects[lo..hi]
    }

    /// Declared read-set of `a` (sorted): the places its enabling
    /// condition may inspect.
    pub fn read_set(&self, a: ActivityId) -> &[PlaceId] {
        &self.reads[a.0]
    }

    /// Declared write-set of `a` (sorted): the places a firing of `a`
    /// may mutate.
    pub fn write_set(&self, a: ActivityId) -> &[PlaceId] {
        &self.writes[a.0]
    }

    /// Total number of `affects` edges (diagnostics: the average list
    /// length is the expected re-evaluation work per firing).
    pub fn num_edges(&self) -> usize {
        self.affects.len()
    }
}

impl std::fmt::Debug for DependencyGraph {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DependencyGraph")
            .field("sound", &self.sound)
            .field("activities", &(self.affects_offsets.len().max(1) - 1))
            .field("edges", &self.affects.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use crate::{Delay, SanBuilder};

    /// Disjoint chains: firings in one chain must not affect the other.
    #[test]
    fn disjoint_chains_do_not_affect_each_other() {
        let mut b = SanBuilder::new("two_chains");
        let a0 = b.place_with_tokens("a0", 1).unwrap();
        let a1 = b.place("a1").unwrap();
        let b0 = b.place_with_tokens("b0", 1).unwrap();
        let b1 = b.place("b1").unwrap();
        b.timed_activity("ta", Delay::exponential(1.0))
            .unwrap()
            .input_place(a0)
            .output_place(a1)
            .build()
            .unwrap();
        b.timed_activity("tb", Delay::exponential(1.0))
            .unwrap()
            .input_place(b0)
            .output_place(b1)
            .build()
            .unwrap();
        let model = b.build().unwrap();
        let g = model.dependency_graph();
        assert!(g.is_sound());
        let ta = model.find_activity("ta").unwrap();
        let tb = model.find_activity("tb").unwrap();
        assert_eq!(g.affected_by(ta), &[ta.index() as u32]);
        assert_eq!(g.affected_by(tb), &[tb.index() as u32]);
    }

    /// A shared place couples the two activities in both directions.
    #[test]
    fn shared_place_couples_activities() {
        let mut b = SanBuilder::new("coupled");
        let shared = b.place_with_tokens("shared", 1).unwrap();
        let out1 = b.place("out1").unwrap();
        let out2 = b.place("out2").unwrap();
        b.timed_activity("t1", Delay::exponential(1.0))
            .unwrap()
            .input_place(shared)
            .output_place(out1)
            .build()
            .unwrap();
        b.timed_activity("t2", Delay::exponential(1.0))
            .unwrap()
            .input_place(shared)
            .output_place(out2)
            .build()
            .unwrap();
        let model = b.build().unwrap();
        let g = model.dependency_graph();
        let t1 = model.find_activity("t1").unwrap();
        let t2 = model.find_activity("t2").unwrap();
        assert_eq!(g.affected_by(t1), &[t1.index() as u32, t2.index() as u32]);
        assert!(g.read_set(t1).contains(&shared));
        assert!(g.write_set(t1).contains(&out1));
    }

    /// Gate `touches` declarations feed both sets.
    #[test]
    fn gate_touches_extend_the_sets() {
        let mut b = SanBuilder::new("gated");
        let p = b.place_with_tokens("p", 1).unwrap();
        let flag = b.place_with_tokens("flag", 1).unwrap();
        let counter = b.place("counter").unwrap();
        let guard = b.predicate_gate_touching("guard", [flag], move |m| m.is_marked(flag));
        let bump = b.output_gate_touching("bump", [counter], move |m| {
            m.add_tokens(counter, 1);
        });
        b.timed_activity("t", Delay::exponential(1.0))
            .unwrap()
            .input_place(p)
            .input_gate(guard)
            .output_place(p)
            .output_gate(bump)
            .build()
            .unwrap();
        let model = b.build().unwrap();
        let g = model.dependency_graph();
        assert!(g.is_sound());
        let t = model.find_activity("t").unwrap();
        assert!(g.read_set(t).contains(&flag));
        assert!(g.write_set(t).contains(&counter));
    }

    /// Split declarations keep predicate reads and marking-function
    /// writes apart: a gate that only *writes* shared bookkeeping does
    /// not put it in the read-set, and a pure predicate contributes no
    /// writes at all.
    #[test]
    fn split_and_pure_declarations_tighten_the_sets() {
        let mut b = SanBuilder::new("split");
        let p = b.place_with_tokens("p", 1).unwrap();
        let q = b.place_with_tokens("q", 1).unwrap();
        let watched = b.place_with_tokens("watched", 1).unwrap();
        let ledger = b.place("ledger").unwrap();
        let split = b.input_gate_touching_split(
            "split",
            [watched],
            [ledger],
            move |m| m.is_marked(watched),
            move |m| m.add_tokens(ledger, 1),
        );
        b.timed_activity("t_split", Delay::exponential(1.0))
            .unwrap()
            .input_place(p)
            .input_gate(split)
            .output_place(p)
            .build()
            .unwrap();
        // A pure predicate reading the ledger: affected by `t_split`'s
        // writes, but its own touches must not count as writes.
        let audit = b.predicate_gate_touching("audit", [ledger], move |m| m.is_marked(ledger));
        b.timed_activity("t_audit", Delay::exponential(1.0))
            .unwrap()
            .input_place(q)
            .input_gate(audit)
            .output_place(q)
            .build()
            .unwrap();
        let model = b.build().unwrap();
        let g = model.dependency_graph();
        assert!(g.is_sound());
        let t_split = model.find_activity("t_split").unwrap();
        let t_audit = model.find_activity("t_audit").unwrap();
        // Split gate: `watched` is read-only, `ledger` write-only.
        assert!(g.read_set(t_split).contains(&watched));
        assert!(!g.read_set(t_split).contains(&ledger));
        assert!(g.write_set(t_split).contains(&ledger));
        assert!(!g.write_set(t_split).contains(&watched));
        // Pure predicate: reads the ledger, writes nothing beyond arcs.
        assert!(g.read_set(t_audit).contains(&ledger));
        assert!(!g.write_set(t_audit).contains(&ledger));
        // So the ledger couples t_split -> t_audit but not the reverse.
        assert!(g.affected_by(t_split).contains(&(t_audit.index() as u32)));
        assert!(!g.affected_by(t_audit).contains(&(t_split.index() as u32)));
    }

    /// An undeclared gate makes the graph unsound and empties `affects`.
    #[test]
    fn undeclared_gate_is_unsound() {
        let mut b = SanBuilder::new("undeclared");
        let p = b.place_with_tokens("p", 1).unwrap();
        let g = b.predicate_gate("opaque", |_| true);
        b.timed_activity("t", Delay::exponential(1.0))
            .unwrap()
            .input_place(p)
            .input_gate(g)
            .output_place(p)
            .build()
            .unwrap();
        let model = b.build().unwrap();
        let graph = model.dependency_graph();
        assert!(!graph.is_sound());
        let t = model.find_activity("t").unwrap();
        assert!(graph.affected_by(t).is_empty());
        assert_eq!(graph.num_edges(), 0);
    }
}
