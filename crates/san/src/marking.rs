//! Markings: the state of a SAN.

use std::hash::{Hash, Hasher};

use crate::place::{PlaceDecl, PlaceId, PlaceKind};
use crate::trace;

/// Tag bit marking a slot as an extended-place redirect. Token counts
/// are capped just below it, so the bit unambiguously distinguishes a
/// count from an array index.
const EXT_TAG: u64 = 1 << 63;

/// The contents of one place.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum PlaceValue {
    /// Token count of a simple place.
    Tokens(u64),
    /// Contents of an extended (array) place.
    Array(Vec<i64>),
}

/// A complete marking: the token count or array contents of every
/// declared place.
///
/// Markings are plain data — hashable and comparable — so they can serve
/// directly as CTMC states during state-space exploration.
///
/// Storage is a dense `Vec<u64>` with one slot per place. Simple places
/// store their token count directly — the overwhelmingly common case in
/// the paper's models, and the layout the simulators' hot loop reads —
/// while extended places store a tagged index into a side table of
/// arrays.
///
/// `Eq` and `Hash` are implemented over the *canonical form*: the
/// per-place semantic value (token count, or array contents), in place
/// order. Two markings with the same values compare and hash equal even
/// if their internal side tables were laid out differently — the
/// equality a model checker's visited set and any cross-construction
/// state cache need. See [`Marking::fingerprint`] for a stable digest of
/// the same form.
///
/// Accessors take [`PlaceId`]s handed out by the builder. The `tokens` /
/// `set_tokens` family addresses simple places; `array` / `array_mut`
/// address extended places. Using the wrong accessor for a place's kind
/// panics: this is a programming error in model construction, not a
/// runtime condition.
#[derive(Debug, Clone)]
pub struct Marking {
    /// Per-place token count, or `EXT_TAG | index` into `arrays`.
    slots: Vec<u64>,
    /// Extended-place contents, in declaration order.
    arrays: Vec<Vec<i64>>,
}

impl Marking {
    /// Builds the initial marking from declarations.
    pub(crate) fn from_decls(decls: &[PlaceDecl]) -> Self {
        let mut slots = Vec::with_capacity(decls.len());
        let mut arrays = Vec::new();
        for d in decls {
            match d.kind {
                PlaceKind::Simple => {
                    assert!(d.initial_tokens < EXT_TAG, "token count overflow");
                    slots.push(d.initial_tokens);
                }
                PlaceKind::Extended { .. } => {
                    slots.push(EXT_TAG | arrays.len() as u64);
                    arrays.push(d.initial_array.clone());
                }
            }
        }
        Marking { slots, arrays }
    }

    /// Number of places.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether the marking covers zero places.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Raw value of a place.
    ///
    /// # Panics
    ///
    /// Panics if `p` is out of bounds.
    pub fn value(&self, p: PlaceId) -> PlaceValue {
        trace::note_read(p);
        let slot = self.slots[p.0];
        if slot & EXT_TAG == 0 {
            PlaceValue::Tokens(slot)
        } else {
            PlaceValue::Array(self.arrays[(slot & !EXT_TAG) as usize].clone())
        }
    }

    /// Token count of a simple place.
    ///
    /// # Panics
    ///
    /// Panics if `p` is out of bounds or refers to an extended place.
    #[inline]
    pub fn tokens(&self, p: PlaceId) -> u64 {
        trace::note_read(p);
        let slot = self.slots[p.0];
        assert!(
            slot & EXT_TAG == 0,
            "place {} is extended; use array()/array_mut() to access it",
            p.0
        );
        slot
    }

    /// Sets the token count of a simple place.
    ///
    /// # Panics
    ///
    /// Panics if `p` is out of bounds, refers to an extended place, or
    /// `n` exceeds the representable token range.
    #[inline]
    pub fn set_tokens(&mut self, p: PlaceId, n: u64) {
        trace::note_write(p);
        let slot = &mut self.slots[p.0];
        assert!(
            *slot & EXT_TAG == 0,
            "place {} is extended; use array()/array_mut() to access it",
            p.0
        );
        assert!(n < EXT_TAG, "token count overflow");
        *slot = n;
    }

    /// Adds tokens to a simple place.
    ///
    /// # Panics
    ///
    /// Panics on kind mismatch or token-count overflow.
    pub fn add_tokens(&mut self, p: PlaceId, n: u64) {
        let cur = self.tokens(p);
        self.set_tokens(p, cur.checked_add(n).expect("token count overflow"));
    }

    /// Removes tokens from a simple place.
    ///
    /// # Panics
    ///
    /// Panics on kind mismatch or if fewer than `n` tokens are present —
    /// firing an activity whose input arcs are not satisfied is an
    /// engine bug, not a model condition.
    pub fn remove_tokens(&mut self, p: PlaceId, n: u64) {
        let cur = self.tokens(p);
        assert!(
            cur >= n,
            "cannot remove {n} tokens from place {} holding {cur}",
            p.0
        );
        self.set_tokens(p, cur - n);
    }

    /// Contents of an extended place.
    ///
    /// # Panics
    ///
    /// Panics if `p` is out of bounds or refers to a simple place.
    pub fn array(&self, p: PlaceId) -> &[i64] {
        trace::note_read(p);
        let slot = self.slots[p.0];
        assert!(
            slot & EXT_TAG != 0,
            "place {} is simple; use tokens()/set_tokens() to access it",
            p.0
        );
        &self.arrays[(slot & !EXT_TAG) as usize]
    }

    /// Mutable contents of an extended place.
    ///
    /// # Panics
    ///
    /// Panics if `p` is out of bounds or refers to a simple place.
    pub fn array_mut(&mut self, p: PlaceId) -> &mut [i64] {
        // Handing out a mutable slice counts as both a read and a write:
        // the caller can do either and the trace must over-approximate.
        trace::note_read(p);
        trace::note_write(p);
        let slot = self.slots[p.0];
        assert!(
            slot & EXT_TAG != 0,
            "place {} is simple; use tokens()/set_tokens() to access it",
            p.0
        );
        &mut self.arrays[(slot & !EXT_TAG) as usize]
    }

    /// Whether a place is marked: a simple place holding at least one
    /// token, or an extended place with any non-zero element. Works for
    /// both kinds, so callers iterating over every place (diagnostics,
    /// linting) need not branch on the declaration.
    ///
    /// # Panics
    ///
    /// Panics if `p` is out of bounds.
    #[inline]
    pub fn is_marked(&self, p: PlaceId) -> bool {
        trace::note_read(p);
        let slot = self.slots[p.0];
        if slot & EXT_TAG == 0 {
            slot > 0
        } else {
            self.arrays[(slot & !EXT_TAG) as usize]
                .iter()
                .any(|&v| v != 0)
        }
    }

    /// Total tokens across all simple places (diagnostic).
    pub fn total_tokens(&self) -> u64 {
        self.slots.iter().filter(|&&slot| slot & EXT_TAG == 0).sum()
    }

    /// Canonical 64-bit digest of the marking (FNV-1a over the same
    /// per-place byte stream `Hash` feeds its hasher).
    ///
    /// Unlike `Hash`, whose output depends on the hasher and its seed,
    /// the fingerprint is stable across processes and runs — suitable
    /// for state-set digests in reports and cross-run comparisons.
    /// Equal markings (per the canonical `Eq`) always have equal
    /// fingerprints; unequal markings collide only with ordinary
    /// 64-bit-hash probability.
    pub fn fingerprint(&self) -> u64 {
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        fn eat(h: u64, byte: u8) -> u64 {
            (h ^ u64::from(byte)).wrapping_mul(PRIME)
        }
        fn eat_u64(mut h: u64, v: u64) -> u64 {
            for byte in v.to_le_bytes() {
                h = eat(h, byte);
            }
            h
        }
        let mut h = eat_u64(OFFSET, self.slots.len() as u64);
        for &slot in &self.slots {
            if slot & EXT_TAG == 0 {
                h = eat(h, 0);
                h = eat_u64(h, slot);
            } else {
                let arr = &self.arrays[(slot & !EXT_TAG) as usize];
                h = eat(h, 1);
                h = eat_u64(h, arr.len() as u64);
                for &v in arr {
                    h = eat_u64(h, v as u64);
                }
            }
        }
        h
    }
}

/// Canonical equality: per-place semantic values in place order,
/// independent of how the extended-place side table happens to be laid
/// out. Markings of models with different place counts are simply
/// unequal.
impl PartialEq for Marking {
    fn eq(&self, other: &Self) -> bool {
        if self.slots.len() != other.slots.len() {
            return false;
        }
        self.slots.iter().zip(&other.slots).all(|(&a, &b)| {
            match (a & EXT_TAG == 0, b & EXT_TAG == 0) {
                (true, true) => a == b,
                (false, false) => {
                    self.arrays[(a & !EXT_TAG) as usize] == other.arrays[(b & !EXT_TAG) as usize]
                }
                // A simple place can never equal an extended one, even
                // when the raw slot bits happen to match.
                _ => false,
            }
        })
    }
}

impl Eq for Marking {}

/// Canonical hash, consistent with the canonical `PartialEq`: feeds the
/// hasher each place's semantic value (kind tag + count, or kind tag +
/// array contents) in place order. Internal side-table indices never
/// reach the hasher, so equal markings hash equal regardless of
/// construction order.
impl Hash for Marking {
    fn hash<H: Hasher>(&self, state: &mut H) {
        state.write_usize(self.slots.len());
        for &slot in &self.slots {
            if slot & EXT_TAG == 0 {
                state.write_u8(0);
                state.write_u64(slot);
            } else {
                state.write_u8(1);
                self.arrays[(slot & !EXT_TAG) as usize].hash(state);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn decls() -> Vec<PlaceDecl> {
        vec![
            PlaceDecl {
                name: "p".into(),
                kind: PlaceKind::Simple,
                initial_tokens: 2,
                initial_array: vec![],
            },
            PlaceDecl {
                name: "arr".into(),
                kind: PlaceKind::Extended { len: 3 },
                initial_tokens: 0,
                initial_array: vec![1, -2, 3],
            },
        ]
    }

    #[test]
    fn initial_marking_reflects_decls() {
        let m = Marking::from_decls(&decls());
        assert_eq!(m.len(), 2);
        assert_eq!(m.tokens(PlaceId(0)), 2);
        assert_eq!(m.array(PlaceId(1)), &[1, -2, 3]);
        assert_eq!(m.total_tokens(), 2);
    }

    #[test]
    fn token_arithmetic() {
        let mut m = Marking::from_decls(&decls());
        m.add_tokens(PlaceId(0), 3);
        assert_eq!(m.tokens(PlaceId(0)), 5);
        m.remove_tokens(PlaceId(0), 5);
        assert!(!m.is_marked(PlaceId(0)));
    }

    #[test]
    #[should_panic(expected = "cannot remove")]
    fn underflow_panics() {
        let mut m = Marking::from_decls(&decls());
        m.remove_tokens(PlaceId(0), 3);
    }

    #[test]
    #[should_panic(expected = "is extended")]
    fn kind_mismatch_panics() {
        let m = Marking::from_decls(&decls());
        let _ = m.tokens(PlaceId(1));
    }

    #[test]
    #[should_panic(expected = "token count overflow")]
    fn token_overflow_panics() {
        let mut m = Marking::from_decls(&decls());
        m.set_tokens(PlaceId(0), u64::MAX / 2 + 1);
    }

    #[test]
    fn value_reports_both_kinds() {
        let m = Marking::from_decls(&decls());
        assert_eq!(m.value(PlaceId(0)), PlaceValue::Tokens(2));
        assert_eq!(m.value(PlaceId(1)), PlaceValue::Array(vec![1, -2, 3]));
    }

    #[test]
    fn is_marked_works_for_both_place_kinds() {
        let mut m = Marking::from_decls(&decls());
        assert!(m.is_marked(PlaceId(0)));
        assert!(m.is_marked(PlaceId(1)));
        m.set_tokens(PlaceId(0), 0);
        assert!(!m.is_marked(PlaceId(0)));
        for v in m.array_mut(PlaceId(1)) {
            *v = 0;
        }
        assert!(!m.is_marked(PlaceId(1)));
    }

    #[test]
    fn array_mutation() {
        let mut m = Marking::from_decls(&decls());
        m.array_mut(PlaceId(1))[0] = 42;
        assert_eq!(m.array(PlaceId(1)), &[42, -2, 3]);
    }

    fn std_hash(m: &Marking) -> u64 {
        use std::hash::{DefaultHasher, Hash, Hasher};
        let mut h = DefaultHasher::new();
        m.hash(&mut h);
        h.finish()
    }

    #[test]
    fn equality_and_hash_ignore_side_table_layout() {
        // Two extended places whose side-table rows are permuted between
        // the two markings: semantically identical, internally distinct.
        let a = Marking {
            slots: vec![7, EXT_TAG, EXT_TAG | 1],
            arrays: vec![vec![1, 2], vec![3, 4]],
        };
        let b = Marking {
            slots: vec![7, EXT_TAG | 1, EXT_TAG],
            arrays: vec![vec![3, 4], vec![1, 2]],
        };
        assert_eq!(a, b);
        assert_eq!(std_hash(&a), std_hash(&b));
        assert_eq!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn simple_and_extended_places_never_compare_equal() {
        // Raw slot bits collide (both are EXT_TAG as a bit pattern would
        // be illegal for simple, so use index 0 vs tokens 0): a simple
        // place holding 0 tokens vs an extended place whose row is [].
        let simple = Marking {
            slots: vec![0],
            arrays: vec![],
        };
        let ext = Marking {
            slots: vec![EXT_TAG],
            arrays: vec![vec![]],
        };
        assert_ne!(simple, ext);
    }

    #[test]
    fn fingerprint_is_stable_and_separates_values() {
        let m = Marking::from_decls(&decls());
        let mut n = m.clone();
        assert_eq!(m.fingerprint(), n.fingerprint());
        n.set_tokens(PlaceId(0), 3);
        assert_ne!(m.fingerprint(), n.fingerprint());
        n.set_tokens(PlaceId(0), 2);
        assert_eq!(m.fingerprint(), n.fingerprint());
        n.array_mut(PlaceId(1))[2] = -3;
        assert_ne!(m.fingerprint(), n.fingerprint());
    }

    #[test]
    fn markings_hash_and_compare() {
        use std::collections::HashSet;
        let a = Marking::from_decls(&decls());
        let mut b = a.clone();
        assert_eq!(a, b);
        b.set_tokens(PlaceId(0), 99);
        assert_ne!(a, b);
        let mut set = HashSet::new();
        set.insert(a.clone());
        set.insert(b.clone());
        set.insert(a.clone());
        assert_eq!(set.len(), 2);
    }
}
