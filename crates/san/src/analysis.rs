//! Structural sanity analysis of SAN models.

use std::collections::HashSet;

use crate::model::SanModel;

/// Structural statistics and warnings about a model.
///
/// Gate predicates and functions are opaque closures, so the analysis is
/// conservative: a place is reported *arc-isolated* when no arc touches
/// it even though gates may still read or write it (common for shared
/// bookkeeping places such as the paper's severity counters).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StructuralReport {
    /// Number of places.
    pub num_places: usize,
    /// Number of timed activities.
    pub num_timed: usize,
    /// Number of instantaneous activities.
    pub num_instantaneous: usize,
    /// Names of places no arc reads or writes (gates may still use
    /// them).
    pub arc_isolated_places: Vec<String>,
    /// Names of activities with neither input arcs nor input gates:
    /// once enabled they stay enabled forever (for a timed activity a
    /// self-loop source; usually a modelling mistake).
    pub always_enabled_activities: Vec<String>,
    /// Names of activities whose firing cannot change any marking
    /// through arcs (gates may still act).
    pub arc_silent_activities: Vec<String>,
}

impl StructuralReport {
    /// Whether no warnings were produced.
    pub fn is_clean(&self) -> bool {
        self.arc_isolated_places.is_empty()
            && self.always_enabled_activities.is_empty()
            && self.arc_silent_activities.is_empty()
    }
}

/// A violation of a weighted token-conservation law.
#[derive(Debug, Clone, PartialEq)]
pub struct ConservationViolation {
    /// Name of the offending activity.
    pub activity: String,
    /// Case index within the activity.
    pub case: usize,
    /// Net change of the weighted token sum when that case fires
    /// (through arcs; gate functions are not analyzable).
    pub delta: f64,
}

impl SanModel {
    /// Checks a weighted token-conservation law (a candidate
    /// P-semiflow): for every activity case, the weighted sum of arc
    /// token changes must be zero. `weights` maps place index →
    /// weight; missing places weigh zero.
    ///
    /// Only arc effects are analyzable — gate marking functions are
    /// opaque closures, so a model that moves tokens through gates
    /// (like the AHS severity counters) must be checked dynamically
    /// instead (see the workspace's invariant property tests).
    ///
    /// Returns every violating `(activity, case)`.
    pub fn check_conservation(
        &self,
        weights: &[(crate::PlaceId, f64)],
    ) -> Vec<ConservationViolation> {
        let mut w = vec![0.0_f64; self.num_places()];
        for (p, weight) in weights {
            w[p.index()] = *weight;
        }
        let mut violations = Vec::new();
        for a in self.activities() {
            let consumed: f64 = a
                .input_arcs()
                .iter()
                .map(|(p, n)| w[p.index()] * *n as f64)
                .sum();
            for (case, c) in a.cases().iter().enumerate() {
                let produced: f64 = c
                    .output_arcs()
                    .iter()
                    .map(|(p, n)| w[p.index()] * *n as f64)
                    .sum();
                let delta = produced - consumed;
                if delta.abs() > 1e-12 {
                    violations.push(ConservationViolation {
                        activity: a.name().to_owned(),
                        case,
                        delta,
                    });
                }
            }
        }
        violations
    }

    /// Computes structural statistics and conservative warnings.
    pub fn analyze(&self) -> StructuralReport {
        let mut touched: HashSet<usize> = HashSet::new();
        let mut always_enabled = Vec::new();
        let mut arc_silent = Vec::new();

        for a in self.activities() {
            for (p, _) in a.input_arcs() {
                touched.insert(p.index());
            }
            let mut writes = !a.input_arcs().is_empty();
            for c in a.cases() {
                for (p, _) in c.output_arcs() {
                    touched.insert(p.index());
                    writes = true;
                }
            }
            if a.input_arcs().is_empty() && a.input_gates().is_empty() {
                always_enabled.push(a.name().to_owned());
            }
            let has_gates = !a.input_gates().is_empty()
                || a.cases().iter().any(|c| !c.output_gates().is_empty());
            if !writes && !has_gates {
                arc_silent.push(a.name().to_owned());
            }
        }

        let arc_isolated_places = self
            .places()
            .iter()
            .enumerate()
            .filter(|(i, _)| !touched.contains(i))
            .map(|(_, d)| d.name().to_owned())
            .collect();

        StructuralReport {
            num_places: self.num_places(),
            num_timed: self.timed_activities().len(),
            num_instantaneous: self.instantaneous_activities().len(),
            arc_isolated_places,
            always_enabled_activities: always_enabled,
            arc_silent_activities: arc_silent,
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::builder::SanBuilder;
    use crate::delay::Delay;

    #[test]
    fn clean_model_reports_clean() {
        let mut b = SanBuilder::new("clean");
        let p = b.place_with_tokens("p", 1).unwrap();
        let q = b.place("q").unwrap();
        b.timed_activity("a", Delay::exponential(1.0))
            .unwrap()
            .input_place(p)
            .output_place(q)
            .build()
            .unwrap();
        let r = b.build().unwrap().analyze();
        assert!(r.is_clean(), "unexpected warnings: {r:?}");
        assert_eq!(r.num_places, 2);
        assert_eq!(r.num_timed, 1);
        assert_eq!(r.num_instantaneous, 0);
    }

    #[test]
    fn isolated_place_detected() {
        let mut b = SanBuilder::new("iso");
        let p = b.place_with_tokens("p", 1).unwrap();
        b.place("floating").unwrap();
        b.timed_activity("a", Delay::exponential(1.0))
            .unwrap()
            .input_place(p)
            .build()
            .unwrap();
        let r = b.build().unwrap().analyze();
        assert_eq!(r.arc_isolated_places, vec!["floating".to_owned()]);
    }

    #[test]
    fn always_enabled_detected() {
        let mut b = SanBuilder::new("ae");
        let q = b.place("q").unwrap();
        b.timed_activity("source", Delay::exponential(1.0))
            .unwrap()
            .output_place(q)
            .build()
            .unwrap();
        let r = b.build().unwrap().analyze();
        assert_eq!(r.always_enabled_activities, vec!["source".to_owned()]);
        assert!(!r.is_clean());
    }

    #[test]
    fn conservation_law_holds_for_closed_cycle() {
        let mut b = SanBuilder::new("cycle");
        let p = b.place_with_tokens("p", 1).unwrap();
        let q = b.place("q").unwrap();
        b.timed_activity("pq", Delay::exponential(1.0))
            .unwrap()
            .input_place(p)
            .output_place(q)
            .build()
            .unwrap();
        b.timed_activity("qp", Delay::exponential(1.0))
            .unwrap()
            .input_place(q)
            .output_place(p)
            .build()
            .unwrap();
        let model = b.build().unwrap();
        assert!(model.check_conservation(&[(p, 1.0), (q, 1.0)]).is_empty());
    }

    #[test]
    fn conservation_violation_reported_per_case() {
        let mut b = SanBuilder::new("leaky");
        let p = b.place_with_tokens("p", 1).unwrap();
        let q = b.place("q").unwrap();
        // Case 0 conserves, case 1 duplicates the token.
        b.timed_activity("split", Delay::exponential(1.0))
            .unwrap()
            .input_place(p)
            .case(0.5)
            .output_place(q)
            .case(0.5)
            .output_arc(q, 2)
            .build()
            .unwrap();
        let model = b.build().unwrap();
        let v = model.check_conservation(&[(p, 1.0), (q, 1.0)]);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].case, 1);
        assert!((v[0].delta - 1.0).abs() < 1e-12);
        assert_eq!(v[0].activity, "split");

        // Weighting q at ½ makes case 1 conserve but breaks case 0.
        let v = model.check_conservation(&[(p, 1.0), (q, 0.5)]);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].case, 0);
    }

    #[test]
    fn arc_silent_detected() {
        let mut b = SanBuilder::new("silent");
        let p = b.place_with_tokens("p", 1).unwrap();
        let g = b.predicate_gate("guard", move |m| m.is_marked(p));
        b.timed_activity("noop", Delay::exponential(1.0))
            .unwrap()
            .input_gate(g)
            .build()
            .unwrap();
        let r = b.build().unwrap().analyze();
        // Gate-only activity: not arc-silent (has gates), but also not
        // always-enabled (has an input gate).
        assert!(r.arc_silent_activities.is_empty());
        assert!(r.always_enabled_activities.is_empty());
    }
}
