//! Stochastic Activity Networks (SANs).
//!
//! This crate is a from-scratch implementation of the SAN formalism of
//! Sanders & Meyer ("Stochastic activity networks: formal definitions and
//! concepts", 2001) as used by the closed-source Möbius tool, which the
//! DSN 2009 AHS safety study relied on. It provides:
//!
//! * **Places** — simple token counters and *extended places* holding
//!   fixed-length integer arrays (Möbius extended places), see
//!   [`PlaceDecl`], [`Marking`];
//! * **Activities** — timed activities with exponential (possibly
//!   marking-dependent), deterministic, uniform, Erlang, and Weibull
//!   delays, and instantaneous activities with priorities and weights;
//!   both support *case* distributions on completion ([`Activity`],
//!   [`Delay`], [`Case`]);
//! * **Gates** — input gates (enabling predicate + marking function) and
//!   output gates (marking function), see [`SanBuilder::input_gate`];
//! * **Composition** — `Join`/`Rep`-style construction through shared
//!   places and namespaced module builders
//!   ([`SanBuilder::join`], [`SanBuilder::replicate`]), mirroring the
//!   Möbius composed-model tree of the paper's Figure 9;
//! * **Execution semantics** — enabling tests, case selection, firing,
//!   and instantaneous stabilization, both randomized (for simulation)
//!   and exhaustive (for numerical state-space generation), see
//!   [`SanModel`].
//!
//! # Example
//!
//! A two-state failure/repair component:
//!
//! ```
//! use ahs_san::{Delay, SanBuilder};
//!
//! let mut b = SanBuilder::new("component");
//! let up = b.place_with_tokens("up", 1)?;
//! let down = b.place("down")?;
//! b.timed_activity("fail", Delay::exponential(1e-3))?
//!     .input_place(up)
//!     .output_place(down)
//!     .build()?;
//! b.timed_activity("repair", Delay::exponential(0.5))?
//!     .input_place(down)
//!     .output_place(up)
//!     .build()?;
//! let model = b.build()?;
//!
//! let m = model.initial_marking().clone();
//! assert_eq!(m.tokens(up), 1);
//! assert_eq!(model.enabled_timed(&m).len(), 1);
//! # Ok::<(), ahs_san::SanError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod activity;
mod analysis;
mod builder;
mod delay;
mod depgraph;
mod enablement;
mod error;
mod gate;
mod marking;
mod model;
mod place;
pub mod trace;

pub use activity::{Activity, ActivityId, Case, CaseProb, Timing};
pub use analysis::{ConservationViolation, StructuralReport};
pub use builder::{ActivityBuilder, SanBuilder};
pub use delay::{Delay, RateFn};
pub use depgraph::DependencyGraph;
pub use enablement::{force_full_rescan_enabled, set_force_full_rescan, EnablementCache};
pub use error::SanError;
pub use gate::{InputGate, InputGateId, OutputGate, OutputGateId};
pub use marking::{Marking, PlaceValue};
pub use model::SanModel;
pub use place::{PlaceDecl, PlaceId, PlaceKind};
