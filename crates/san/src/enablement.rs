//! Incremental enablement tracking.
//!
//! [`EnablementCache`] holds one enabled/disabled flag per activity,
//! kept current across firings via the model's static
//! [`DependencyGraph`](crate::DependencyGraph): after activity `a`
//! fires, only the activities in `affected_by(a)` are re-evaluated.
//! The executors in `ahs-des` own one cache per simulator and thread it
//! through every run; all scratch buffers (instantaneous candidates,
//! weights, case probabilities, the fired-cascade log) live inside the
//! cache so the hot loop performs no allocation.
//!
//! ## Fallback semantics
//!
//! If the model's dependency graph is unsound (some gate lacks a
//! `touches` declaration) — or a caller forces it — the cache runs in
//! *full-rescan* mode: every firing re-evaluates every activity. The
//! flags end up identical either way; only the amount of predicate
//! work differs. Results are **bitwise identical** across modes because
//! enablement evaluation consumes no randomness and the cached
//! execution paths draw from the RNG in exactly the same order as the
//! uncached [`SanModel::stabilize`] / full-rescan paths.
//!
//! In debug builds every incremental update cross-checks the whole
//! flag vector against a fresh full rescan, so any unsound `touches`
//! declaration that slipped past the linter aborts loudly instead of
//! corrupting a study.

use std::sync::atomic::{AtomicBool, Ordering};

use rand::Rng;

use crate::activity::{ActivityId, Timing};
use crate::error::SanError;
use crate::marking::Marking;
use crate::model::{SanModel, MAX_INSTANT_FIRINGS};

/// Process-global override forcing every subsequently created
/// [`EnablementCache`] into full-rescan mode. A diagnostics/test knob:
/// the equivalence tiers run identical studies with the cache on and
/// forced off and require bitwise-identical estimates.
static FORCE_FULL_RESCAN: AtomicBool = AtomicBool::new(false);

/// Globally forces (or stops forcing) full-rescan mode for caches
/// created after the call. Intended for tests and A/B diagnostics.
pub fn set_force_full_rescan(on: bool) {
    FORCE_FULL_RESCAN.store(on, Ordering::SeqCst);
}

/// Whether the global full-rescan override is currently set.
pub fn force_full_rescan_enabled() -> bool {
    FORCE_FULL_RESCAN.load(Ordering::SeqCst)
}

/// Per-simulator enablement state plus the hot-loop scratch buffers.
///
/// Create one with [`SanModel::new_cache`], prime it against a marking
/// with [`SanModel::prime_cache`], and keep it consistent by routing
/// every firing through [`SanModel::fire_cached`] /
/// [`SanModel::stabilize_cached`].
pub struct EnablementCache {
    /// One flag per activity, indexed by activity index.
    enabled: Vec<bool>,
    /// Timed-queue slot per activity (`u32::MAX` for instantaneous).
    timed_slot: Vec<u32>,
    /// Timed slots whose enabledness flipped since the last
    /// [`clear_changed_timed`](EnablementCache::clear_changed_timed).
    changed_timed: Vec<u32>,
    changed_timed_flags: Vec<bool>,
    /// Instantaneous activities fired by the last `stabilize_cached`.
    fired: Vec<ActivityId>,
    /// Scratch: case probabilities.
    probs: Vec<f64>,
    /// Scratch: instantaneous tie-break weights.
    weights: Vec<f64>,
    /// Scratch: enabled instantaneous candidates.
    inst: Vec<ActivityId>,
    /// Full-rescan mode (unsound graph, global override, or forced).
    rescan: bool,
    /// Whether `enabled` reflects some marking yet.
    primed: bool,
}

impl EnablementCache {
    fn new(model: &SanModel) -> Self {
        let n = model.activities().len();
        let mut timed_slot = vec![u32::MAX; n];
        for (slot, &a) in model.timed_activities().iter().enumerate() {
            timed_slot[a.index()] = slot as u32;
        }
        EnablementCache {
            enabled: vec![false; n],
            timed_slot,
            changed_timed: Vec::new(),
            changed_timed_flags: vec![false; model.timed_activities().len()],
            fired: Vec::new(),
            probs: Vec::new(),
            weights: Vec::new(),
            inst: Vec::new(),
            rescan: !model.dependency_graph().is_sound() || force_full_rescan_enabled(),
            primed: false,
        }
    }

    /// Cached enabledness of `a` (valid once primed).
    pub fn is_enabled(&self, a: ActivityId) -> bool {
        debug_assert!(self.primed, "cache queried before prime_cache");
        self.enabled[a.index()]
    }

    /// Whether the cache is operating in full-rescan fallback mode.
    pub fn is_full_rescan(&self) -> bool {
        self.rescan
    }

    /// Forces full-rescan mode for the lifetime of this cache.
    /// Irreversible: a cache created over an unsound graph can never
    /// leave fallback mode, so neither can a forced one.
    pub fn force_full_rescan(&mut self) {
        self.rescan = true;
    }

    /// The instantaneous activities fired by the most recent
    /// [`SanModel::stabilize_cached`], in firing order.
    pub fn fired(&self) -> &[ActivityId] {
        &self.fired
    }

    /// Marks a timed-queue slot as needing schedule reconciliation
    /// (used by the event-driven executor for the slot it just popped).
    pub fn note_timed_changed(&mut self, slot: usize) {
        if !self.changed_timed_flags[slot] {
            self.changed_timed_flags[slot] = true;
            self.changed_timed.push(slot as u32);
        }
    }

    /// Timed slots whose enabledness may have changed since the last
    /// clear, sorted ascending (delay sampling must happen in slot
    /// order to keep RNG consumption identical to a full rescan).
    pub fn changed_timed_sorted(&mut self) -> &[u32] {
        self.changed_timed.sort_unstable();
        &self.changed_timed
    }

    /// Clears the changed-timed-slot accumulator.
    pub fn clear_changed_timed(&mut self) {
        for &slot in &self.changed_timed {
            self.changed_timed_flags[slot as usize] = false;
        }
        self.changed_timed.clear();
    }
}

impl std::fmt::Debug for EnablementCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EnablementCache")
            .field("activities", &self.enabled.len())
            .field("rescan", &self.rescan)
            .field("primed", &self.primed)
            .finish()
    }
}

impl SanModel {
    /// Creates an enablement cache sized for this model. The cache
    /// starts in full-rescan mode if the model's dependency graph is
    /// unsound (see [`DependencyGraph::is_sound`](crate::DependencyGraph::is_sound)).
    pub fn new_cache(&self) -> EnablementCache {
        EnablementCache::new(self)
    }

    /// Recomputes every activity's enabledness from scratch against
    /// `marking`. Call once per run before using the cached paths.
    pub fn prime_cache(&self, cache: &mut EnablementCache, marking: &Marking) {
        for (i, flag) in cache.enabled.iter_mut().enumerate() {
            *flag = self.is_enabled(ActivityId(i), marking);
        }
        cache.clear_changed_timed();
        cache.fired.clear();
        cache.primed = true;
    }

    /// Fires `a` with `case` (exactly like [`fire`](SanModel::fire))
    /// and brings the cache back in sync: in incremental mode only the
    /// activities in `affected_by(a)` are re-evaluated; in full-rescan
    /// mode, all of them. Flipped timed slots are accumulated for the
    /// event-driven executor's schedule reconciliation.
    ///
    /// # Panics
    ///
    /// Panics (like `fire`) on unsatisfied input arcs, and in debug
    /// builds if the incremental update disagrees with a full rescan —
    /// which means a gate's `touches` declaration is unsound.
    pub fn fire_cached(
        &self,
        a: ActivityId,
        case: usize,
        marking: &mut Marking,
        cache: &mut EnablementCache,
    ) {
        debug_assert!(cache.primed, "fire_cached before prime_cache");
        self.fire(a, case, marking);
        if cache.rescan {
            for i in 0..cache.enabled.len() {
                self.update_cached_one(i, marking, cache);
            }
        } else {
            let graph = self.dependency_graph();
            for &i in graph.affected_by(a) {
                self.update_cached_one(i as usize, marking, cache);
            }
            #[cfg(debug_assertions)]
            self.debug_check_cache(cache, marking, a);
        }
    }

    fn update_cached_one(&self, i: usize, marking: &Marking, cache: &mut EnablementCache) {
        let now = self.is_enabled(ActivityId(i), marking);
        if now != cache.enabled[i] {
            cache.enabled[i] = now;
            let slot = cache.timed_slot[i];
            if slot != u32::MAX {
                cache.note_timed_changed(slot as usize);
            }
        }
    }

    #[cfg(debug_assertions)]
    fn debug_check_cache(&self, cache: &EnablementCache, marking: &Marking, fired: ActivityId) {
        for (i, &cached) in cache.enabled.iter().enumerate() {
            let fresh = self.is_enabled(ActivityId(i), marking);
            assert_eq!(
                cached,
                fresh,
                "incremental enablement diverged from full rescan for `{}` after `{}` fired: \
                 a gate `touches` declaration is unsound (run ahs-lint)",
                self.activity(ActivityId(i)).name(),
                self.activity(fired).name(),
            );
        }
    }

    /// Selects a case like [`select_case`](SanModel::select_case),
    /// using the cache's probability scratch buffer instead of
    /// allocating.
    ///
    /// # Errors
    ///
    /// Returns [`SanError::InvalidCaseDistribution`] if the
    /// distribution is invalid in this marking.
    pub fn select_case_cached<R: Rng + ?Sized>(
        &self,
        a: ActivityId,
        marking: &Marking,
        rng: &mut R,
        cache: &mut EnablementCache,
    ) -> Result<usize, SanError> {
        let mut probs = std::mem::take(&mut cache.probs);
        let picked = self.select_case_with(a, marking, rng, &mut probs);
        cache.probs = probs;
        picked
    }

    /// Fires enabled instantaneous activities until the marking is
    /// stable — the cached, allocation-free equivalent of
    /// [`stabilize`](SanModel::stabilize). Returns the number of
    /// firings; the fired sequence is available from
    /// [`EnablementCache::fired`]. Draws from `rng` in exactly the
    /// same order as `stabilize`.
    ///
    /// # Errors
    ///
    /// Returns [`SanError::InstantaneousLivelock`] if stabilization
    /// does not terminate within the internal budget, or
    /// [`SanError::InvalidCaseDistribution`] from case selection.
    pub fn stabilize_cached<R: Rng + ?Sized>(
        &self,
        marking: &mut Marking,
        rng: &mut R,
        cache: &mut EnablementCache,
    ) -> Result<usize, SanError> {
        debug_assert!(cache.primed, "stabilize_cached before prime_cache");
        cache.fired.clear();
        for _ in 0..MAX_INSTANT_FIRINGS {
            // Highest-priority enabled instantaneous activities, in
            // declaration order — mirrors `enabled_instantaneous`.
            let mut inst = std::mem::take(&mut cache.inst);
            inst.clear();
            let mut best: Option<u32> = None;
            for &a in self.instantaneous_activities() {
                if !cache.enabled[a.index()] {
                    continue;
                }
                let &Timing::Instantaneous { priority, .. } = self.activity(a).timing() else {
                    unreachable!("instantaneous list contains only instantaneous activities");
                };
                match best {
                    Some(b) if priority < b => {}
                    Some(b) if priority == b => inst.push(a),
                    _ => {
                        best = Some(priority);
                        inst.clear();
                        inst.push(a);
                    }
                }
            }
            if inst.is_empty() {
                cache.inst = inst;
                return Ok(cache.fired.len());
            }
            let chosen = if inst.len() == 1 {
                inst[0]
            } else {
                // Weighted tie-break, identical to `stabilize`.
                let mut weights = std::mem::take(&mut cache.weights);
                weights.clear();
                for &a in &inst {
                    let &Timing::Instantaneous { weight, .. } = self.activity(a).timing() else {
                        unreachable!();
                    };
                    weights.push(weight);
                }
                let total: f64 = weights.iter().sum();
                let mut u: f64 = rng.random::<f64>() * total;
                let mut pick = inst[inst.len() - 1];
                for (&a, &w) in inst.iter().zip(weights.iter()) {
                    if u < w {
                        pick = a;
                        break;
                    }
                    u -= w;
                }
                cache.weights = weights;
                pick
            };
            cache.inst = inst;
            let case = self.select_case_cached(chosen, marking, rng, cache)?;
            self.fire_cached(chosen, case, marking, cache);
            cache.fired.push(chosen);
        }
        Err(SanError::InstantaneousLivelock {
            iterations: MAX_INSTANT_FIRINGS,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Delay, SanBuilder};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    /// A three-stage chain with an instantaneous middle step and a
    /// gated side activity.
    fn model() -> SanModel {
        let mut b = SanBuilder::new("cachetest");
        let p0 = b.place_with_tokens("p0", 1).unwrap();
        let p1 = b.place("p1").unwrap();
        let p2 = b.place("p2").unwrap();
        let flag = b.place_with_tokens("flag", 1).unwrap();
        let side = b.place("side").unwrap();
        b.timed_activity("start", Delay::exponential(1.0))
            .unwrap()
            .input_place(p0)
            .output_place(p1)
            .build()
            .unwrap();
        b.instant_activity("mid", 0, 1.0)
            .unwrap()
            .input_place(p1)
            .output_place(p2)
            .build()
            .unwrap();
        let guard = b.predicate_gate_touching("guard", [p2], move |m| m.is_marked(p2));
        b.timed_activity("gated", Delay::exponential(2.0))
            .unwrap()
            .input_place(flag)
            .input_gate(guard)
            .output_place(side)
            .build()
            .unwrap();
        b.build().unwrap()
    }

    fn assert_cache_matches(model: &SanModel, cache: &EnablementCache, marking: &Marking) {
        for (i, a) in model.activities().iter().enumerate() {
            assert_eq!(
                cache.is_enabled(ActivityId(i)),
                model.is_enabled(ActivityId(i), marking),
                "cache wrong for `{}`",
                a.name()
            );
        }
    }

    #[test]
    fn cached_execution_tracks_full_rescan() {
        let m = model();
        assert!(m.dependency_graph().is_sound());
        let mut cache = m.new_cache();
        assert!(!cache.is_full_rescan());
        let mut marking = m.initial_marking().clone();
        m.prime_cache(&mut cache, &marking);
        assert_cache_matches(&m, &cache, &marking);

        let start = m.find_activity("start").unwrap();
        let mut rng = SmallRng::seed_from_u64(1);
        m.fire_cached(start, 0, &mut marking, &mut cache);
        assert_cache_matches(&m, &cache, &marking);
        let fired = m
            .stabilize_cached(&mut marking, &mut rng, &mut cache)
            .unwrap();
        assert_eq!(fired, 1);
        assert_eq!(cache.fired().len(), 1);
        assert_cache_matches(&m, &cache, &marking);
        // The cascade marked p2, which enables the gated activity —
        // its timed slot must be flagged for reconciliation.
        let gated = m.find_activity("gated").unwrap();
        assert!(cache.is_enabled(gated));
        let changed = cache.changed_timed_sorted().to_vec();
        assert!(!changed.is_empty());
        cache.clear_changed_timed();
        assert!(cache.changed_timed_sorted().is_empty());
    }

    #[test]
    fn cached_stabilize_consumes_rng_like_uncached() {
        // Two equal-priority instantaneous activities force a weighted
        // pick: both paths must draw the same number of variates and
        // produce the same marking.
        let mut b = SanBuilder::new("tie");
        let src = b.place_with_tokens("src", 1).unwrap();
        let x = b.place("x").unwrap();
        let y = b.place("y").unwrap();
        b.instant_activity("to_x", 0, 3.0)
            .unwrap()
            .input_place(src)
            .output_place(x)
            .build()
            .unwrap();
        b.instant_activity("to_y", 0, 1.0)
            .unwrap()
            .input_place(src)
            .output_place(y)
            .build()
            .unwrap();
        let m = b.build().unwrap();
        for seed in 0..50 {
            let mut rng_a = SmallRng::seed_from_u64(seed);
            let mut rng_b = SmallRng::seed_from_u64(seed);
            let mut plain = m.initial_marking().clone();
            m.stabilize(&mut plain, &mut rng_a).unwrap();
            let mut cached = m.initial_marking().clone();
            let mut cache = m.new_cache();
            m.prime_cache(&mut cache, &cached);
            m.stabilize_cached(&mut cached, &mut rng_b, &mut cache)
                .unwrap();
            assert_eq!(plain, cached, "seed {seed}");
            assert_eq!(rng_a.random::<u64>(), rng_b.random::<u64>(), "seed {seed}");
        }
    }

    #[test]
    fn forced_rescan_produces_identical_flags() {
        let m = model();
        let mut inc = m.new_cache();
        let mut full = m.new_cache();
        full.force_full_rescan();
        assert!(full.is_full_rescan());
        let mut mk_a = m.initial_marking().clone();
        let mut mk_b = m.initial_marking().clone();
        m.prime_cache(&mut inc, &mk_a);
        m.prime_cache(&mut full, &mk_b);
        let start = m.find_activity("start").unwrap();
        m.fire_cached(start, 0, &mut mk_a, &mut inc);
        m.fire_cached(start, 0, &mut mk_b, &mut full);
        assert_eq!(mk_a, mk_b);
        for i in 0..m.num_activities() {
            assert_eq!(
                inc.is_enabled(ActivityId(i)),
                full.is_enabled(ActivityId(i))
            );
        }
    }

    #[test]
    fn global_override_forces_new_caches_into_rescan() {
        let m = model();
        set_force_full_rescan(true);
        let cache = m.new_cache();
        set_force_full_rescan(false);
        assert!(cache.is_full_rescan());
        assert!(!m.new_cache().is_full_rescan());
    }
}
