//! Delay distributions of timed activities.

use rand::Rng;

use crate::marking::Marking;

/// A firing rate that may depend on the current marking.
///
/// Marking-dependent rates are the SAN idiom for state-dependent
/// behaviour (e.g. a join rate proportional to free platoon slots).
pub enum RateFn {
    /// A fixed rate.
    Const(f64),
    /// A rate computed from the marking on every (re)enabling.
    MarkingDependent(Box<dyn Fn(&Marking) -> f64 + Send + Sync>),
}

impl RateFn {
    /// Evaluates the rate in the given marking.
    pub fn eval(&self, marking: &Marking) -> f64 {
        match self {
            RateFn::Const(r) => *r,
            RateFn::MarkingDependent(f) => f(marking),
        }
    }

    /// Whether the rate is a constant.
    pub fn is_const(&self) -> bool {
        matches!(self, RateFn::Const(_))
    }
}

impl std::fmt::Debug for RateFn {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RateFn::Const(r) => write!(f, "RateFn::Const({r})"),
            RateFn::MarkingDependent(_) => write!(f, "RateFn::MarkingDependent(..)"),
        }
    }
}

/// Delay distribution of a timed activity.
///
/// The paper's models are entirely exponential (constant-rate); the other
/// distributions make the engine usable beyond the Markovian case and are
/// exercised by the event-queue simulator backend.
#[derive(Debug)]
pub enum Delay {
    /// Exponential delay with the given (possibly marking-dependent)
    /// rate.
    Exponential(RateFn),
    /// A fixed, deterministic delay.
    Deterministic(f64),
    /// Uniform delay on `[low, high]`.
    Uniform {
        /// Lower bound.
        low: f64,
        /// Upper bound.
        high: f64,
    },
    /// Erlang-`k` delay: the sum of `k` i.i.d. exponentials of the given
    /// rate (so mean `k / rate`).
    Erlang {
        /// Number of exponential stages.
        k: u32,
        /// Rate of each stage.
        rate: f64,
    },
    /// Weibull delay with the given shape and scale.
    Weibull {
        /// Shape parameter (`1.0` degenerates to exponential).
        shape: f64,
        /// Scale parameter.
        scale: f64,
    },
}

impl Delay {
    /// Exponential delay with a constant rate.
    pub fn exponential(rate: f64) -> Self {
        Delay::Exponential(RateFn::Const(rate))
    }

    /// Exponential delay with a marking-dependent rate.
    pub fn exponential_fn<F>(rate: F) -> Self
    where
        F: Fn(&Marking) -> f64 + Send + Sync + 'static,
    {
        Delay::Exponential(RateFn::MarkingDependent(Box::new(rate)))
    }

    /// Whether this delay is exponential (the Markov/SSA backend only
    /// accepts exponential models).
    pub fn is_exponential(&self) -> bool {
        matches!(self, Delay::Exponential(_))
    }

    /// Whether the delay is certainly zero: a deterministic 0 delay or a
    /// zero-width uniform at 0. Such a "timed" activity fires the moment
    /// it is enabled, which is what instantaneous activities are for —
    /// the simulation backends pay event-queue overhead for nothing and
    /// the Markov backends reject it. Flagged by strict validation and
    /// the linter's delay-sanity pass.
    pub fn is_degenerate(&self) -> bool {
        match self {
            Delay::Deterministic(d) => *d == 0.0,
            Delay::Uniform { low, high } => *low == 0.0 && *high == 0.0,
            _ => false,
        }
    }

    /// Validates the distribution parameters.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first invalid
    /// parameter, used by the builder to produce
    /// [`SanError::InvalidDelay`](crate::SanError::InvalidDelay) and by
    /// the linter's delay-sanity pass.
    pub fn validate(&self) -> Result<(), String> {
        match self {
            Delay::Exponential(RateFn::Const(r)) => {
                if !r.is_finite() || *r <= 0.0 {
                    return Err(format!(
                        "exponential rate must be positive and finite, got {r}"
                    ));
                }
            }
            Delay::Exponential(RateFn::MarkingDependent(_)) => {}
            Delay::Deterministic(d) => {
                if !d.is_finite() || *d < 0.0 {
                    return Err(format!("deterministic delay must be non-negative, got {d}"));
                }
            }
            Delay::Uniform { low, high } => {
                if !(low.is_finite() && high.is_finite()) || *low < 0.0 || low > high {
                    return Err(format!(
                        "uniform delay needs 0 <= low <= high, got [{low}, {high}]"
                    ));
                }
            }
            Delay::Erlang { k, rate } => {
                if *k == 0 {
                    return Err("erlang stage count must be positive".into());
                }
                if !rate.is_finite() || *rate <= 0.0 {
                    return Err(format!(
                        "erlang rate must be positive and finite, got {rate}"
                    ));
                }
            }
            Delay::Weibull { shape, scale } => {
                if !(shape.is_finite() && scale.is_finite()) || *shape <= 0.0 || *scale <= 0.0 {
                    return Err(format!(
                        "weibull shape and scale must be positive, got shape={shape} scale={scale}"
                    ));
                }
            }
        }
        Ok(())
    }

    /// Samples one delay in the given marking.
    ///
    /// # Panics
    ///
    /// Panics if a marking-dependent exponential rate evaluates to a
    /// non-positive or non-finite value.
    pub fn sample<R: Rng + ?Sized>(&self, marking: &Marking, rng: &mut R) -> f64 {
        match self {
            Delay::Exponential(rate) => {
                let r = rate.eval(marking);
                assert!(
                    r.is_finite() && r > 0.0,
                    "marking-dependent exponential rate must be positive, got {r}"
                );
                sample_exponential(r, rng)
            }
            Delay::Deterministic(d) => *d,
            Delay::Uniform { low, high } => {
                if low == high {
                    *low
                } else {
                    rng.random_range(*low..*high)
                }
            }
            Delay::Erlang { k, rate } => (0..*k).map(|_| sample_exponential(*rate, rng)).sum(),
            Delay::Weibull { shape, scale } => {
                let u: f64 = rng.random_range(f64::MIN_POSITIVE..1.0);
                scale * (-u.ln()).powf(1.0 / shape)
            }
        }
    }

    /// Mean of the distribution in the given marking.
    pub fn mean(&self, marking: &Marking) -> f64 {
        match self {
            Delay::Exponential(rate) => 1.0 / rate.eval(marking),
            Delay::Deterministic(d) => *d,
            Delay::Uniform { low, high } => (low + high) / 2.0,
            Delay::Erlang { k, rate } => f64::from(*k) / rate,
            Delay::Weibull { shape, scale } => scale * gamma(1.0 + 1.0 / shape),
        }
    }
}

/// Inverse-CDF exponential sample.
fn sample_exponential<R: Rng + ?Sized>(rate: f64, rng: &mut R) -> f64 {
    let u: f64 = rng.random_range(f64::MIN_POSITIVE..1.0);
    -u.ln() / rate
}

/// Lanczos approximation of the gamma function (g = 7, n = 9), accurate
/// to ~15 significant digits for positive real arguments.
fn gamma(x: f64) -> f64 {
    const G: f64 = 7.0;
    // Published Lanczos coefficients, kept verbatim for auditability.
    #[allow(clippy::excessive_precision, clippy::inconsistent_digit_grouping)]
    const C: [f64; 9] = [
        0.999_999_999_999_809_93,
        676.520_368_121_885_1,
        -1259.139_216_722_402_8,
        771.323_428_777_653_13,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        std::f64::consts::PI / ((std::f64::consts::PI * x).sin() * gamma(1.0 - x))
    } else {
        let x = x - 1.0;
        let mut a = C[0];
        let t = x + G + 0.5;
        for (i, &c) in C.iter().enumerate().skip(1) {
            a += c / (x + i as f64);
        }
        (2.0 * std::f64::consts::PI).sqrt() * t.powf(x + 0.5) * (-t).exp() * a
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::place::PlaceDecl;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn empty_marking() -> Marking {
        Marking::from_decls(&[] as &[PlaceDecl])
    }

    #[test]
    fn const_rate_eval() {
        let r = RateFn::Const(2.5);
        assert_eq!(r.eval(&empty_marking()), 2.5);
        assert!(r.is_const());
    }

    #[test]
    fn exponential_sample_mean_converges() {
        let d = Delay::exponential(4.0);
        let m = empty_marking();
        let mut rng = SmallRng::seed_from_u64(42);
        let n = 20_000;
        let total: f64 = (0..n).map(|_| d.sample(&m, &mut rng)).sum();
        let mean = total / f64::from(n);
        assert!((mean - 0.25).abs() < 0.01, "empirical mean {mean}");
        assert!((d.mean(&m) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn erlang_mean() {
        let d = Delay::Erlang { k: 3, rate: 6.0 };
        let m = empty_marking();
        assert!((d.mean(&m) - 0.5).abs() < 1e-12);
        let mut rng = SmallRng::seed_from_u64(7);
        let n = 20_000;
        let total: f64 = (0..n).map(|_| d.sample(&m, &mut rng)).sum();
        assert!((total / f64::from(n) - 0.5).abs() < 0.02);
    }

    #[test]
    fn deterministic_and_uniform() {
        let m = empty_marking();
        let mut rng = SmallRng::seed_from_u64(1);
        assert_eq!(Delay::Deterministic(3.0).sample(&m, &mut rng), 3.0);
        let u = Delay::Uniform {
            low: 1.0,
            high: 2.0,
        };
        for _ in 0..100 {
            let s = u.sample(&m, &mut rng);
            assert!((1.0..2.0).contains(&s));
        }
        assert!((u.mean(&m) - 1.5).abs() < 1e-12);
        let point = Delay::Uniform {
            low: 2.0,
            high: 2.0,
        };
        assert_eq!(point.sample(&m, &mut rng), 2.0);
    }

    #[test]
    fn weibull_shape_one_is_exponential() {
        let m = empty_marking();
        let w = Delay::Weibull {
            shape: 1.0,
            scale: 0.5,
        };
        assert!((w.mean(&m) - 0.5).abs() < 1e-9);
        let mut rng = SmallRng::seed_from_u64(9);
        let n = 30_000;
        let total: f64 = (0..n).map(|_| w.sample(&m, &mut rng)).sum();
        assert!((total / f64::from(n) - 0.5).abs() < 0.02);
    }

    #[test]
    fn gamma_known_values() {
        assert!((gamma(1.0) - 1.0).abs() < 1e-10);
        assert!((gamma(5.0) - 24.0).abs() < 1e-8);
        assert!((gamma(0.5) - std::f64::consts::PI.sqrt()).abs() < 1e-10);
    }

    #[test]
    fn validation_catches_bad_parameters() {
        assert!(Delay::exponential(0.0).validate().is_err());
        assert!(Delay::exponential(f64::NAN).validate().is_err());
        assert!(Delay::Deterministic(-1.0).validate().is_err());
        assert!(Delay::Uniform {
            low: 2.0,
            high: 1.0
        }
        .validate()
        .is_err());
        assert!(Delay::Erlang { k: 0, rate: 1.0 }.validate().is_err());
        assert!(Delay::Weibull {
            shape: 0.0,
            scale: 1.0
        }
        .validate()
        .is_err());
        assert!(Delay::exponential(1.0).validate().is_ok());
    }

    #[test]
    fn marking_dependent_rate_sees_marking() {
        let decls = [PlaceDecl {
            name: "p".into(),
            kind: crate::place::PlaceKind::Simple,
            initial_tokens: 4,
            initial_array: vec![],
        }];
        let m = Marking::from_decls(&decls);
        let d = Delay::exponential_fn(|m| m.tokens(crate::PlaceId(0)) as f64);
        assert!((d.mean(&m) - 0.25).abs() < 1e-12);
        assert!(!matches!(d, Delay::Exponential(RateFn::Const(_))));
    }
}
