//! Activities: the transitions of a SAN.

use crate::delay::Delay;
use crate::gate::{InputGateId, OutputGateId};
use crate::marking::Marking;
use crate::place::PlaceId;

/// Opaque handle to an activity within a [`SanModel`](crate::SanModel).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ActivityId(pub(crate) usize);

impl ActivityId {
    /// Index of this activity in the model's activity table.
    pub fn index(self) -> usize {
        self.0
    }
}

/// Timing behaviour of an activity.
#[derive(Debug)]
pub enum Timing {
    /// A timed activity with the given delay distribution.
    Timed(Delay),
    /// An instantaneous activity; among simultaneously enabled
    /// instantaneous activities, the highest `priority` fires first and
    /// ties are broken proportionally to `weight`.
    Instantaneous {
        /// Selection priority (higher fires first).
        priority: u32,
        /// Tie-break weight among equal priorities.
        weight: f64,
    },
}

impl Timing {
    /// Whether the activity is instantaneous.
    pub fn is_instantaneous(&self) -> bool {
        matches!(self, Timing::Instantaneous { .. })
    }
}

/// Probability of one case of an activity.
pub enum CaseProb {
    /// A fixed probability.
    Const(f64),
    /// A probability computed from the marking at completion time.
    MarkingDependent(Box<dyn Fn(&Marking) -> f64 + Send + Sync>),
}

impl CaseProb {
    /// Evaluates the probability in the given marking.
    pub fn eval(&self, marking: &Marking) -> f64 {
        match self {
            CaseProb::Const(p) => *p,
            CaseProb::MarkingDependent(f) => f(marking),
        }
    }
}

impl std::fmt::Debug for CaseProb {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CaseProb::Const(p) => write!(f, "CaseProb::Const({p})"),
            CaseProb::MarkingDependent(_) => write!(f, "CaseProb::MarkingDependent(..)"),
        }
    }
}

/// One case (probabilistic outcome branch) of an activity.
///
/// The `One_vehicle` maneuver activities use two cases — success
/// (`v_OK`) and failure (escalate to the next maneuver) — with
/// marking-dependent probabilities reflecting the state of the adjacent
/// vehicles involved in the maneuver.
#[derive(Debug)]
pub struct Case {
    pub(crate) probability: CaseProb,
    pub(crate) output_arcs: Vec<(PlaceId, u64)>,
    pub(crate) output_gates: Vec<OutputGateId>,
}

impl Case {
    /// The case's output arcs `(place, tokens added)`.
    pub fn output_arcs(&self) -> &[(PlaceId, u64)] {
        &self.output_arcs
    }

    /// The case's output gates.
    pub fn output_gates(&self) -> &[OutputGateId] {
        &self.output_gates
    }

    /// Evaluates the case probability.
    pub fn probability(&self, marking: &Marking) -> f64 {
        self.probability.eval(marking)
    }

    /// The case's probability specification (constant or
    /// marking-dependent), without evaluating it.
    pub fn probability_spec(&self) -> &CaseProb {
        &self.probability
    }
}

/// An activity: timing, enabling structure, and completion cases.
#[derive(Debug)]
pub struct Activity {
    pub(crate) name: String,
    pub(crate) timing: Timing,
    pub(crate) input_arcs: Vec<(PlaceId, u64)>,
    pub(crate) input_gates: Vec<InputGateId>,
    pub(crate) cases: Vec<Case>,
}

impl Activity {
    /// Activity name (namespaced).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The activity's timing behaviour.
    pub fn timing(&self) -> &Timing {
        &self.timing
    }

    /// Input arcs `(place, tokens required/consumed)`.
    pub fn input_arcs(&self) -> &[(PlaceId, u64)] {
        &self.input_arcs
    }

    /// Input gates attached to the activity.
    pub fn input_gates(&self) -> &[InputGateId] {
        &self.input_gates
    }

    /// Completion cases (at least one).
    pub fn cases(&self) -> &[Case] {
        &self.cases
    }

    /// Whether the activity is instantaneous.
    pub fn is_instantaneous(&self) -> bool {
        self.timing.is_instantaneous()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::place::{PlaceDecl, PlaceKind};

    #[test]
    fn case_prob_eval() {
        let m = Marking::from_decls(&[PlaceDecl {
            name: "p".into(),
            kind: PlaceKind::Simple,
            initial_tokens: 3,
            initial_array: vec![],
        }]);
        assert_eq!(CaseProb::Const(0.25).eval(&m), 0.25);
        let dep =
            CaseProb::MarkingDependent(Box::new(|m| 1.0 / (1.0 + m.tokens(PlaceId(0)) as f64)));
        assert!((dep.eval(&m) - 0.25).abs() < 1e-12);
        assert!(format!("{dep:?}").contains("MarkingDependent"));
    }

    #[test]
    fn timing_kind() {
        assert!(Timing::Instantaneous {
            priority: 1,
            weight: 1.0
        }
        .is_instantaneous());
        assert!(!Timing::Timed(Delay::exponential(1.0)).is_instantaneous());
    }
}
