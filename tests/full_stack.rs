//! Workspace-level integration tests exercising the public API across
//! crate boundaries, the way a downstream user would.

use ahs_safety::core::{ManeuverRates, Params, UnsafetyEvaluator};
use ahs_safety::des::{Backend, Study};
use ahs_safety::platoon::DurationModel;
use ahs_safety::san::{Delay, SanBuilder};
use ahs_safety::stats::TimeGrid;

#[test]
fn build_a_custom_san_and_study_it_through_the_umbrella() {
    // A downstream user modelling their own component with the
    // re-exported layers.
    let mut b = SanBuilder::new("user-model");
    let up = b.place_with_tokens("up", 1).unwrap();
    let degraded = b.place("degraded").unwrap();
    let down = b.place("down").unwrap();
    b.timed_activity("degrade", Delay::exponential(0.4))
        .unwrap()
        .input_place(up)
        .output_place(degraded)
        .build()
        .unwrap();
    b.timed_activity("die", Delay::exponential(1.2))
        .unwrap()
        .input_place(degraded)
        .output_place(down)
        .build()
        .unwrap();
    let model = b.build().unwrap();

    let study = Study::new(model)
        .with_seed(1)
        .with_fixed_replications(20_000)
        .with_threads(2);
    let grid = TimeGrid::new(vec![1.0, 4.0]);
    let est = study
        .first_passage(move |m| m.is_marked(down), &grid, Backend::Markov)
        .unwrap();
    let pts = est.curve.points(0.95);

    // Closed form for the hypo-exponential chain:
    // P(down by t) = 1 - (b·e^{-at} - a·e^{-bt})/(b - a).
    let (a, b_) = (0.4_f64, 1.2_f64);
    for pt in &pts {
        let t = pt.x;
        let exact = 1.0 - (b_ * (-a * t).exp() - a * (-b_ * t).exp()) / (b_ - a);
        assert!((pt.y - exact).abs() < 0.012, "t={t}: {} vs {exact}", pt.y);
    }
}

#[test]
fn kinematic_durations_feed_the_safety_model() {
    // End-to-end pipeline: measure maneuver durations kinematically,
    // convert to rates, run the safety study with those rates.
    let duration_model = DurationModel::default();
    let mut rates = ManeuverRates::nominal();
    for (m, stats) in duration_model.estimate_all(120, 5) {
        rates.set_rate(m, stats.rate_per_hour());
    }

    let params = Params::builder()
        .n(4)
        .lambda(5e-3)
        .maneuver_rates(rates)
        .build()
        .unwrap();
    let curve = UnsafetyEvaluator::new(params)
        .with_seed(77)
        .with_replications(8_000)
        .with_threads(2)
        .evaluate(&TimeGrid::new(vec![2.0, 10.0]))
        .unwrap();
    let pts = curve.points();
    assert!(pts[0].y > 0.0);
    assert!(pts[0].y <= pts[1].y);
    assert!(pts[1].y < 0.1);
}

#[test]
fn slower_maneuvers_mean_higher_unsafety() {
    // The maneuver rate window (15-30/hr) matters: halving every rate
    // doubles the exposure window of each failure, raising S(t).
    let grid = TimeGrid::new(vec![6.0]);
    let s = |scale: f64| {
        let mut rates = ManeuverRates::nominal();
        for m in ahs_safety::platoon::RecoveryManeuver::ALL {
            rates.set_rate(m, rates.rate(m) * scale);
        }
        let params = Params::builder()
            .n(4)
            .lambda(5e-3)
            .maneuver_rates(rates)
            .build()
            .unwrap();
        UnsafetyEvaluator::new(params)
            .with_seed(88)
            .with_replications(30_000)
            .with_threads(2)
            .evaluate(&grid)
            .unwrap()
            .points()[0]
            .y
    };
    let nominal = s(1.0);
    let slow = s(0.4);
    assert!(
        slow > nominal,
        "slower maneuvers must be less safe: {slow} vs {nominal}"
    );
}

#[test]
fn ctmc_layer_reachable_from_umbrella() {
    use ahs_safety::ctmc::{transient_distribution, SanMarkovModel, StateSpace};

    let mut b = SanBuilder::new("fr");
    let up = b.place_with_tokens("up", 1).unwrap();
    let down = b.place("down").unwrap();
    b.timed_activity("fail", Delay::exponential(2.0))
        .unwrap()
        .input_place(up)
        .output_place(down)
        .build()
        .unwrap();
    b.timed_activity("repair", Delay::exponential(5.0))
        .unwrap()
        .input_place(down)
        .output_place(up)
        .build()
        .unwrap();
    let model = b.build().unwrap();
    let adapter = SanMarkovModel::new(&model).unwrap();
    let space = StateSpace::explore(&adapter, 10).unwrap();
    let pi = transient_distribution(&space, 1.0, 1e-12);
    let p_down = space.probability(&pi, |m| m.is_marked(down));
    let exact = 2.0 / 7.0 * (1.0 - (-7.0_f64).exp());
    assert!((p_down - exact).abs() < 1e-9);
}
