//! Shared harness for the workspace-level serve integration tests: a
//! tiny HTTP/1.1 client, status polling, solo-evaluation baselines for
//! bitwise comparisons, and process-isolation plumbing around the real
//! `ahs` binary.
//!
//! This mirrors `crates/serve/tests/common/mod.rs`, but through the
//! umbrella crate — these tests exercise the service the way a
//! deployment does, worker re-exec included.

// Each test binary uses a different subset of this harness.
#![allow(dead_code)]

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

use ahs_safety::core::{BiasMode, Params, UnsafetyCurve, UnsafetyEvaluator};
use ahs_safety::des::generation_path;
use ahs_safety::obs::Json;
use ahs_safety::serve::ProcessIsolation;
use ahs_safety::stats::TimeGrid;

/// One request over a fresh connection. `None` when the server
/// dropped the connection without a response — crucially an immediate
/// EOF, never a hang.
pub fn request(addr: SocketAddr, method: &str, path: &str, body: &str) -> Option<(u16, String)> {
    let mut stream = TcpStream::connect(addr).ok()?;
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .ok()?;
    let raw = format!(
        "{method} {path} HTTP/1.1\r\nhost: ahs-serve\r\ncontent-length: {}\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(raw.as_bytes()).ok()?;
    let mut response = String::new();
    stream.read_to_string(&mut response).ok()?;
    let status: u16 = response.split(' ').nth(1)?.parse().ok()?;
    let body = response.split_once("\r\n\r\n").map(|(_, b)| b.to_owned())?;
    Some((status, body))
}

/// GET a path and parse the JSON body.
pub fn get_json(addr: SocketAddr, path: &str) -> Json {
    let (status, body) = request(addr, "GET", path, "").expect("server must answer");
    assert!(
        (200..300).contains(&status),
        "GET {path} -> {status}: {body}"
    );
    Json::parse(&body).expect("response must be JSON")
}

/// Submits a job body and returns the assigned job id.
pub fn submit(addr: SocketAddr, body: &str) -> String {
    let (status, response) = request(addr, "POST", "/v1/jobs", body).expect("server must answer");
    assert_eq!(status, 202, "submission rejected: {response}");
    Json::parse(&response)
        .expect("admission response is JSON")
        .get("id")
        .and_then(Json::as_str)
        .expect("admission response carries an id")
        .to_owned()
}

/// Polls a job's status until it reaches `want` (panicking on `failed`
/// unless that is the wanted state, and on timeout).
pub fn wait_for_state(addr: SocketAddr, name: &str, want: &str, timeout: Duration) -> Json {
    let deadline = Instant::now() + timeout;
    loop {
        let doc = get_json(addr, &format!("/v1/jobs/{name}"));
        let state = doc.get("state").and_then(Json::as_str).unwrap_or("");
        if state == want {
            return doc;
        }
        if state == "failed" && want != "failed" {
            panic!(
                "{name} failed instead of reaching `{want}`: {:?}",
                doc.get("error")
            );
        }
        assert!(
            Instant::now() < deadline,
            "{name} stuck in `{state}` waiting for `{want}`"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
}

/// A fresh, empty state directory under the target tmp space.
pub fn state_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "ahs-serve-it-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// The `ahs` binary under test — re-execed as `ahs serve-worker` by
/// process-isolated servers.
pub fn worker_exe() -> PathBuf {
    PathBuf::from(env!("CARGO_BIN_EXE_ahs"))
}

/// Process isolation over the binary under test, with the default
/// budgets.
pub fn process_isolation() -> ProcessIsolation {
    ProcessIsolation::new(worker_exe())
}

/// Whether any retained checkpoint generation exists at `base` — the
/// signal that a kill now lands mid-job, after durable progress.
pub fn checkpoint_exists(base: &Path) -> bool {
    (0..4).any(|g| generation_path(base, g).exists())
}

/// SIGKILL a process — the death `catch_unwind` can never see.
pub fn kill9(pid: u64) {
    let status = std::process::Command::new("kill")
        .args(["-9", &pid.to_string()])
        .status()
        .expect("kill(1) must be runnable");
    assert!(status.success(), "kill -9 {pid} failed: {status}");
}

/// The test workload: tiny fleet, large λ so plain Monte Carlo sees
/// hits, two grid points.
pub const N: usize = 2;
pub const LAMBDA: f64 = 5e-3;
pub const HORIZON: f64 = 4.0;
pub const POINTS: usize = 2;

/// The JSON body submitting the test workload.
pub fn job_body(seed: u64, reps: u64, threads: usize) -> String {
    format!(
        r#"{{"n":{N},"lambda":{LAMBDA},"horizon":{HORIZON},"points":{POINTS},"reps":{reps},"seed":{seed},"threads":{threads},"plain":true}}"#
    )
}

/// The same study run solo through `UnsafetyEvaluator` — the baseline
/// every server-evaluated job must match bitwise, no matter how many
/// times its worker process was killed along the way.
pub fn solo(seed: u64, reps: u64, threads: usize) -> UnsafetyCurve {
    let params = Params::builder().n(N).lambda(LAMBDA).build().unwrap();
    let grid = TimeGrid::linspace(HORIZON / POINTS as f64, HORIZON, POINTS);
    UnsafetyEvaluator::new(params)
        .with_seed(seed)
        .with_threads(threads)
        .with_replications(reps)
        .with_bias(BiasMode::None)
        .evaluate(&grid)
        .unwrap()
}

/// Bit patterns of a solo curve's estimates.
pub fn curve_bits(curve: &UnsafetyCurve) -> Vec<(u64, u64, u64, u64)> {
    curve
        .points()
        .iter()
        .map(|p| {
            (
                p.x.to_bits(),
                p.y.to_bits(),
                p.half_width.to_bits(),
                p.samples,
            )
        })
        .collect()
}

/// Bit patterns of the estimates in a job-status document. JSON is a
/// faithful carrier: floats render shortest-roundtrip and parse back
/// to identical bits.
pub fn status_bits(doc: &Json) -> Vec<(u64, u64, u64, u64)> {
    doc.get("estimates")
        .and_then(Json::as_array)
        .expect("status has estimates")
        .iter()
        .map(|e| {
            (
                e.get("x").and_then(Json::as_f64).unwrap().to_bits(),
                e.get("y").and_then(Json::as_f64).unwrap().to_bits(),
                e.get("half_width")
                    .and_then(Json::as_f64)
                    .unwrap()
                    .to_bits(),
                e.get("samples").and_then(Json::as_u64).unwrap(),
            )
        })
        .collect()
}
