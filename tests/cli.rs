//! End-to-end tests of the `ahs` command-line binary.

use std::process::Command;

fn ahs() -> Command {
    Command::new(env!("CARGO_BIN_EXE_ahs"))
}

#[test]
fn help_lists_commands() {
    let out = ahs().arg("help").output().expect("binary runs");
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    for cmd in ["evaluate", "durations", "involved", "dot"] {
        assert!(text.contains(cmd), "help should mention `{cmd}`");
    }
}

#[test]
fn unknown_command_fails_with_usage() {
    let out = ahs().arg("frobnicate").output().expect("binary runs");
    assert!(!out.status.success());
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains("unknown command"));
}

#[test]
fn involved_prints_the_strategy_matrix() {
    let out = ahs()
        .args(["involved", "--n", "6"])
        .output()
        .expect("binary runs");
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    for token in ["DD", "DC", "CD", "CC", "TIE-E", "AS"] {
        assert!(text.contains(token), "missing `{token}` in:\n{text}");
    }
}

#[test]
fn dot_exports_graphviz() {
    let out = ahs()
        .args(["dot", "--n", "2"])
        .output()
        .expect("binary runs");
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.starts_with("digraph"));
    assert!(text.contains("vehicle[0].present"));
    assert!(text.contains("KO_total"));
}

#[test]
fn evaluate_runs_a_small_study() {
    let out = ahs()
        .args([
            "evaluate",
            "--n",
            "2",
            "--lambda",
            "5e-3",
            "--reps",
            "500",
            "--points",
            "2",
            "--horizon",
            "4",
            "--seed",
            "3",
        ])
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("S(t)"));
    assert!(text.contains("replications"));
}

#[test]
fn evaluate_rejects_bad_strategy() {
    let out = ahs()
        .args(["evaluate", "--strategy", "ZZ"])
        .output()
        .expect("binary runs");
    assert!(!out.status.success());
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains("unknown strategy"));
}
