//! End-to-end tests of the `ahs` command-line binary.

use std::process::Command;

fn ahs() -> Command {
    Command::new(env!("CARGO_BIN_EXE_ahs"))
}

#[test]
fn help_lists_commands() {
    let out = ahs().arg("help").output().expect("binary runs");
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    for cmd in ["evaluate", "check", "serve", "durations", "involved", "dot"] {
        assert!(text.contains(cmd), "help should mention `{cmd}`");
    }
}

#[test]
fn unknown_command_fails_with_usage() {
    let out = ahs().arg("frobnicate").output().expect("binary runs");
    assert!(!out.status.success());
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains("unknown command"));
}

#[test]
fn involved_prints_the_strategy_matrix() {
    let out = ahs()
        .args(["involved", "--n", "6"])
        .output()
        .expect("binary runs");
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    for token in ["DD", "DC", "CD", "CC", "TIE-E", "AS"] {
        assert!(text.contains(token), "missing `{token}` in:\n{text}");
    }
}

#[test]
fn dot_exports_graphviz() {
    let out = ahs()
        .args(["dot", "--n", "2"])
        .output()
        .expect("binary runs");
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.starts_with("digraph"));
    assert!(text.contains("vehicle[0].present"));
    assert!(text.contains("KO_total"));
}

/// Runs a small `ahs evaluate` study writing its manifest to `path`,
/// returning stdout.
fn evaluate_small(manifest_path: &std::path::Path, seed: &str, threads: &str) -> String {
    let out = ahs()
        .args([
            "evaluate",
            "--n",
            "2",
            "--lambda",
            "5e-3",
            "--reps",
            "500",
            "--points",
            "2",
            "--horizon",
            "4",
            "--seed",
            seed,
            "--threads",
            threads,
            "--manifest",
            manifest_path.to_str().unwrap(),
        ])
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout).unwrap()
}

#[test]
fn evaluate_runs_a_small_study() {
    let dir = std::env::temp_dir().join("ahs_cli_eval_test");
    let manifest = dir.join("run.manifest.json");
    let text = evaluate_small(&manifest, "3", "2");
    assert!(text.contains("S(t)"));
    assert!(text.contains("replications"));
    assert!(manifest.is_file(), "manifest must be written");
    std::fs::remove_dir_all(&dir).ok();
}

/// The top-level keys the named schema in `tests/` marks required.
fn schema_required_keys(file: &str) -> Vec<String> {
    let schema = std::fs::read_to_string(
        std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("tests")
            .join(file),
    )
    .expect("schema file exists");
    let start = schema
        .find("\"required\": [")
        .expect("schema has required list");
    let block = &schema[start..start + schema[start..].find(']').expect("list closes")];
    block
        .match_indices('"')
        .collect::<Vec<_>>()
        .chunks(2)
        .skip(1) // the "required" token itself
        .filter_map(|pair| match pair {
            [(a, _), (b, _)] => Some(schema[start + a + 1..start + *b].to_owned()),
            _ => None,
        })
        .collect()
}

#[test]
fn evaluate_manifest_matches_schema() {
    let dir = std::env::temp_dir().join("ahs_cli_manifest_schema_test");
    let manifest_path = dir.join("run.manifest.json");
    evaluate_small(&manifest_path, "5", "1");
    let manifest = std::fs::read_to_string(&manifest_path).expect("manifest written");

    let required = schema_required_keys("run-manifest.schema.json");
    assert!(
        required.len() >= 14,
        "schema should list the manifest's required keys, got {required:?}"
    );
    for key in &required {
        assert!(
            manifest.contains(&format!("\"{key}\":")),
            "manifest is missing required key `{key}`:\n{manifest}"
        );
    }
    // Spot checks on the values behind the provenance-critical keys.
    assert!(manifest.contains("\"schema\":\"ahs-run-manifest/v1\""));
    assert!(manifest.contains("\"seed\":5"));
    assert!(manifest.contains("\"threads\":1"));
    assert!(manifest.contains("\"lambda\":0.005"));
    assert!(manifest.contains("\"series\":\"unsafety\""));
    assert!(!manifest.contains("\"git_revision\":\"\""));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn evaluate_reproduces_from_manifest_seed_and_threads() {
    // The acceptance contract of the manifest: re-running with its seed
    // and thread count reproduces the estimates bit for bit — even at a
    // different thread count, since fixed-budget studies are
    // thread-count invariant.
    let dir = std::env::temp_dir().join("ahs_cli_manifest_repro_test");
    let first = dir.join("first.manifest.json");
    let second = dir.join("second.manifest.json");
    let third = dir.join("third.manifest.json");
    evaluate_small(&first, "9", "1");
    evaluate_small(&second, "9", "1");
    evaluate_small(&third, "9", "4");

    let estimates = |p: &std::path::Path| {
        let text = std::fs::read_to_string(p).expect("manifest written");
        let start = text.find("\"estimates\":").expect("has estimates");
        let end = text[start..].find(']').expect("estimates close");
        text[start..start + end].to_owned()
    };
    assert_eq!(estimates(&first), estimates(&second), "same seed, same run");
    assert_eq!(
        estimates(&first),
        estimates(&third),
        "fixed budgets are thread-count invariant"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn check_proves_all_paper_models_and_cross_validates() {
    let out = ahs()
        .args(["check", "--all", "--cross-check", "--format", "json"])
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "check must prove every strategy clean; stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8(out.stdout).unwrap();
    let lines: Vec<&str> = text.lines().filter(|l| !l.is_empty()).collect();
    assert_eq!(lines.len(), 4, "one report per strategy:\n{text}");
    for (line, name) in lines.iter().zip(["dd", "dc", "cd", "cc"]) {
        assert!(line.contains(&format!("\"model\":\"{name}\"")), "{line}");
        assert!(line.contains("\"proved\":true"), "{line}");
        assert!(line.contains("\"complete\":true"), "{line}");
        assert!(line.contains("\"states\":209"), "{line}");
        assert!(line.contains("\"state_sets_match\":true"), "{line}");
        assert!(line.contains("\"transitions_match\":true"), "{line}");
    }
}

#[test]
fn check_report_matches_schema() {
    let dir = std::env::temp_dir().join("ahs_cli_check_schema_test");
    std::fs::create_dir_all(&dir).unwrap();
    let report_path = dir.join("check.report.json");
    let out = ahs()
        .args([
            "check",
            "--strategy",
            "DD",
            "--report",
            report_path.to_str().unwrap(),
        ])
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let report = std::fs::read_to_string(&report_path).expect("report written");

    let required = schema_required_keys("check-report.schema.json");
    assert!(
        required.len() >= 14,
        "schema should list the report's required keys, got {required:?}"
    );
    for key in &required {
        assert!(
            report.contains(&format!("\"{key}\":")),
            "report is missing required key `{key}`:\n{report}"
        );
    }
    assert!(report.contains("\"schema\":\"ahs-check-report/v1\""));
    assert!(report.contains("\"cross_check\":null"));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn check_exits_nonzero_when_nothing_is_proved() {
    // A state budget too small to finish exploration: the run reports
    // inconclusive properties and must not exit 0.
    let out = ahs()
        .args(["check", "--strategy", "DD", "--max-states", "50"])
        .output()
        .expect("binary runs");
    assert!(!out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("TRUNCATED"), "{text}");
}

#[test]
fn checkpoint_directory_namespaces_per_study() {
    // `--checkpoint DIR/` derives a per-study file from the seed and a
    // parameter digest, so two runs sharing the directory never
    // clobber each other — and their default manifests are namespaced
    // alongside.
    let dir = std::env::temp_dir().join("ahs_cli_ckpt_dir_test");
    std::fs::remove_dir_all(&dir).ok();
    let ckpt_dir = format!("{}/", dir.display());
    for seed in ["11", "12"] {
        let out = ahs()
            .args([
                "evaluate",
                "--n",
                "2",
                "--lambda",
                "5e-3",
                "--reps",
                "500",
                "--points",
                "2",
                "--horizon",
                "4",
                "--seed",
                seed,
                "--checkpoint",
                &ckpt_dir,
                "--checkpoint-every",
                "100",
            ])
            .output()
            .expect("binary runs");
        assert!(
            out.status.success(),
            "stderr: {}",
            String::from_utf8_lossy(&out.stderr)
        );
    }
    let names: Vec<String> = std::fs::read_dir(&dir)
        .expect("checkpoint dir created")
        .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
        .collect();
    let checkpoints: Vec<&String> = names
        .iter()
        .filter(|n| n.starts_with("study-") && n.ends_with(".checkpoint.json"))
        .collect();
    let manifests: Vec<&String> = names
        .iter()
        .filter(|n| n.starts_with("study-") && n.ends_with(".manifest.json"))
        .collect();
    assert_eq!(
        checkpoints.len(),
        2,
        "two seeds, two distinct checkpoint files: {names:?}"
    );
    assert_eq!(
        manifests.len(),
        2,
        "two seeds, two distinct namespaced manifests: {names:?}"
    );
    assert!(
        checkpoints.iter().any(|n| n.contains("000000000000000b")),
        "file name must embed the seed: {checkpoints:?}"
    );

    // `--resume DIR/` finds the same per-study file (a completed
    // checkpoint resumes to an identical, already-final study).
    let out = ahs()
        .args([
            "evaluate",
            "--n",
            "2",
            "--lambda",
            "5e-3",
            "--reps",
            "500",
            "--points",
            "2",
            "--horizon",
            "4",
            "--seed",
            "11",
            "--resume",
            &ckpt_dir,
            "--no-manifest",
        ])
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(
        text.contains("resumed from checkpoint watermark"),
        "resume-from-directory must pick up the study file:\n{text}"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn serve_starts_lists_health_and_drains_clean() {
    // Smoke the service end to end over real HTTP: bind an ephemeral
    // port, check /v1/healthz, submit nothing, SIGTERM-equivalent is
    // covered by the serve crate's own tests — here the CLI contract
    // is the parseable listening line and a clean exit-0 drain.
    use std::io::{Read, Write};
    let dir = std::env::temp_dir().join("ahs_cli_serve_test");
    std::fs::remove_dir_all(&dir).ok();
    let mut child = ahs()
        .args([
            "serve",
            "--addr",
            "127.0.0.1:0",
            "--state-dir",
            dir.to_str().unwrap(),
        ])
        .stdout(std::process::Stdio::piped())
        .spawn()
        .expect("binary runs");
    let mut stdout = child.stdout.take().unwrap();
    let mut line = Vec::new();
    let mut byte = [0u8; 1];
    while stdout.read_exact(&mut byte).is_ok() && byte[0] != b'\n' {
        line.push(byte[0]);
    }
    let line = String::from_utf8(line).unwrap();
    let addr = line
        .strip_prefix("ahs-serve listening on http://")
        .unwrap_or_else(|| panic!("unexpected listening line: {line}"))
        .trim()
        .to_owned();

    let mut stream = std::net::TcpStream::connect(&addr).expect("server accepts");
    stream
        .write_all(b"GET /v1/healthz HTTP/1.1\r\nhost: x\r\ncontent-length: 0\r\n\r\n")
        .unwrap();
    let mut response = String::new();
    stream.read_to_string(&mut response).unwrap();
    assert!(response.contains("200 OK"), "{response}");
    assert!(
        response.contains("\"schema\":\"ahs-serve-health/v1\""),
        "{response}"
    );
    assert!(response.contains("\"status\":\"ok\""), "{response}");

    // An idle drain exits 0.
    kill_term(child.id());
    let status = child.wait().unwrap();
    assert_eq!(status.code(), Some(0), "idle drain must exit 0");
    std::fs::remove_dir_all(&dir).ok();
}

/// Sends SIGTERM via /bin/kill so the test has no signal-crate
/// dependency.
fn kill_term(pid: u32) {
    let ok = std::process::Command::new("kill")
        .args(["-TERM", &pid.to_string()])
        .status()
        .map(|s| s.success())
        .unwrap_or(false);
    assert!(ok, "kill -TERM {pid} failed");
}

#[test]
fn evaluate_rejects_bad_strategy() {
    let out = ahs()
        .args(["evaluate", "--strategy", "ZZ"])
        .output()
        .expect("binary runs");
    assert!(!out.status.success());
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains("unknown strategy"));
}
