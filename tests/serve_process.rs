//! Process-isolation integration tests: the server from the umbrella
//! crate supervising real re-execed `ahs serve-worker` processes.
//!
//! These are the acceptance scenarios for the containment boundary:
//! a SIGKILLed worker is reaped, restarted from its latest checkpoint
//! generation, and finishes bitwise-identical to a crash-free solo
//! run; a worker driven past its memory budget dies alone — in its own
//! process — while a concurrent job and the server itself are
//! unaffected.

#![cfg(unix)]

mod serve_common;

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use ahs_safety::obs::Json;
use ahs_safety::serve::{Isolation, ServeConfig, Server};
use serve_common::*;

fn start_process_server(
    tag: &str,
    mut tweak: impl FnMut(&mut ServeConfig),
) -> (Server, std::path::PathBuf) {
    let dir = state_dir(tag);
    let mut config = ServeConfig::new(&dir);
    config.addr = "127.0.0.1:0".to_owned();
    config.isolation = Isolation::Process(process_isolation());
    tweak(&mut config);
    let server = Server::start(config, Arc::new(AtomicBool::new(false))).expect("server starts");
    (server, dir)
}

fn shutdown(server: Server) -> ahs_safety::serve::DrainReport {
    server.stop_flag().store(true, Ordering::Relaxed);
    server.join()
}

#[test]
fn sigkilled_worker_is_reaped_restarted_and_bitwise_identical() {
    let (server, dir) = start_process_server("sigkill", |c| c.checkpoint_every = 2_000);
    let addr = server.local_addr();

    const SEED: u64 = 41;
    const REPS: u64 = 60_000;
    let name = submit(addr, &job_body(SEED, REPS, 1));

    // Wait for durable progress — a published worker PID and at least
    // one flushed checkpoint generation — then SIGKILL the live worker
    // mid-job. SIGKILL is uncatchable: nothing inside the worker gets
    // to flush, apologize, or corrupt anything on the way down.
    let checkpoint = dir.join("jobs").join(&name).join("checkpoint.json");
    let deadline = Instant::now() + Duration::from_secs(60);
    let pid = loop {
        let doc = get_json(addr, &format!("/v1/jobs/{name}"));
        assert_ne!(
            doc.get("state").and_then(Json::as_str),
            Some("finished"),
            "job finished before the kill; raise REPS"
        );
        if let Some(pid) = doc.get("worker_pid").and_then(Json::as_u64) {
            if checkpoint_exists(&checkpoint) {
                break pid;
            }
        }
        assert!(
            Instant::now() < deadline,
            "no checkpointed worker attempt to kill"
        );
        std::thread::sleep(Duration::from_millis(5));
    };
    kill9(pid);

    let doc = wait_for_state(addr, &name, "finished", Duration::from_secs(180));
    assert!(
        doc.get("restarts").and_then(Json::as_u64) >= Some(1),
        "the kill must have consumed a restart: {doc:?}"
    );
    assert_eq!(
        status_bits(&doc),
        curve_bits(&solo(SEED, REPS, 1)),
        "resumed-after-SIGKILL estimates must be bitwise-identical to a solo run"
    );

    let report = shutdown(server);
    assert_eq!(report.outcome().code(), 0);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn mem_limited_worker_dies_alone_while_its_neighbor_finishes() {
    if !ahs_safety::obs::rlimit_supported() {
        eprintln!("skipping: no rlimit support on this platform");
        return;
    }
    let (server, dir) = start_process_server("memlimit", |c| {
        c.workers = 2;
        c.restart_budget = 1;
        if let Isolation::Process(isolation) = &mut c.isolation {
            isolation.mem_limit_mb = Some(1024);
        }
    });
    let addr = server.local_addr();

    // The hog's 200M-point grid is a ~1.6 GiB allocation inside the
    // worker — far past the 1 GiB address-space cap — so the attempt
    // abort()s before the first replication even runs.
    let hog = format!(
        r#"{{"n":{N},"lambda":{LAMBDA},"horizon":{HORIZON},"points":200000000,"reps":100,"seed":5,"threads":1,"plain":true}}"#
    );
    let hog_name = submit(addr, &hog);
    const SEED: u64 = 17;
    const REPS: u64 = 30_000;
    let healthy_name = submit(addr, &job_body(SEED, REPS, 1));

    // The blast radius of the rlimit kill is exactly one process: the
    // hog job fails after exhausting its restart budget, the healthy
    // neighbor finishes bitwise-clean, and the server keeps serving.
    let hog_doc = wait_for_state(addr, &hog_name, "failed", Duration::from_secs(120));
    let error = hog_doc
        .get("error")
        .and_then(Json::as_str)
        .unwrap_or_default()
        .to_owned();
    assert!(
        error.contains("worker process") && error.contains("restart budget"),
        "failure must name the worker death and the exhausted budget: {error}"
    );
    assert_eq!(hog_doc.get("restarts").and_then(Json::as_u64), Some(1));

    let healthy_doc = wait_for_state(addr, &healthy_name, "finished", Duration::from_secs(180));
    assert_eq!(
        status_bits(&healthy_doc),
        curve_bits(&solo(SEED, REPS, 1)),
        "the neighbor of an rlimit-killed worker must be untouched"
    );

    let health = get_json(addr, "/v1/healthz");
    assert_eq!(health.get("status").and_then(Json::as_str), Some("ok"));
    assert!(
        health.get("worker_restarts").and_then(Json::as_u64) >= Some(1),
        "the rlimit kill must be visible in healthz: {health:?}"
    );

    let report = shutdown(server);
    assert_eq!(report.outcome().code(), 0);
    std::fs::remove_dir_all(&dir).ok();
}
