//! Chaos sweep of the worker-process failpoints (`serve::worker::exec`
//! / `heartbeat` / `reap`) — the `ahs-serve-worker` layer of the
//! catalog.
//!
//! Runs only with `--features inject`. The parent-side points (exec,
//! reap) are armed through the in-process registry; the worker-side
//! point (heartbeat) is armed through `AHS_FAILPOINTS`, which the
//! re-execed `ahs serve-worker` child inherits and applies to itself.
//! The contract under every fault: a typed failure or a
//! bitwise-identical restarted job — never a hang, never a corrupted
//! estimate, never a wounded server.

#![cfg(unix)]

mod serve_common;

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::Duration;

use ahs_safety::obs::Json;
use ahs_safety::serve::{Isolation, ServeConfig, Server};
use serve_common::*;

/// The failpoint registry and `AHS_FAILPOINTS` are process-global;
/// serialize the scenarios.
fn serial() -> MutexGuard<'static, ()> {
    static GUARD: Mutex<()> = Mutex::new(());
    GUARD.lock().unwrap_or_else(|e| e.into_inner())
}

fn start_process_server(
    tag: &str,
    mut tweak: impl FnMut(&mut ServeConfig),
) -> (Server, std::path::PathBuf) {
    let dir = state_dir(tag);
    let mut config = ServeConfig::new(&dir);
    config.addr = "127.0.0.1:0".to_owned();
    config.isolation = Isolation::Process(process_isolation());
    tweak(&mut config);
    let server = Server::start(config, Arc::new(AtomicBool::new(false))).expect("server starts");
    (server, dir)
}

fn drain(server: Server, dir: &std::path::Path) {
    server.stop_flag().store(true, Ordering::Relaxed);
    server.join();
    std::fs::remove_dir_all(dir).ok();
}

/// A failed re-exec (missing binary, fork failure) is a restartable
/// crash: the next attempt spawns cleanly and the job finishes
/// bitwise-identical to a solo run.
#[test]
fn exec_fault_costs_one_restart_and_stays_bitwise() {
    let _g = serial();
    ahs_safety::inject::configure_from_spec("serve::worker::exec=1*return(other)").unwrap();
    let (server, dir) = start_process_server("chaos-exec", |_| {});
    let addr = server.local_addr();

    const SEED: u64 = 61;
    const REPS: u64 = 20_000;
    let name = submit(addr, &job_body(SEED, REPS, 1));
    let doc = wait_for_state(addr, &name, "finished", Duration::from_secs(120));
    assert_eq!(
        doc.get("restarts").and_then(Json::as_u64),
        Some(1),
        "{doc:?}"
    );
    assert_eq!(status_bits(&doc), curve_bits(&solo(SEED, REPS, 1)));
    assert!(ahs_safety::inject::hits("serve::worker::exec") >= 1);

    ahs_safety::inject::clear();
    drain(server, &dir);
}

/// Losing the worker's outcome document after a clean-looking exit
/// demotes the attempt to a crash; the restart resumes from the final
/// flushed checkpoint and republishes the same bits.
#[test]
fn reap_fault_recovers_from_the_final_checkpoint_bitwise() {
    let _g = serial();
    ahs_safety::inject::configure_from_spec("serve::worker::reap=1*return(other)").unwrap();
    let (server, dir) = start_process_server("chaos-reap", |_| {});
    let addr = server.local_addr();

    const SEED: u64 = 62;
    const REPS: u64 = 20_000;
    let name = submit(addr, &job_body(SEED, REPS, 1));
    let doc = wait_for_state(addr, &name, "finished", Duration::from_secs(120));
    assert_eq!(
        doc.get("restarts").and_then(Json::as_u64),
        Some(1),
        "{doc:?}"
    );
    assert_eq!(status_bits(&doc), curve_bits(&solo(SEED, REPS, 1)));
    assert!(ahs_safety::inject::hits("serve::worker::reap") >= 1);

    ahs_safety::inject::clear();
    drain(server, &dir);
}

/// A worker whose heartbeat stops advancing is wedged as far as the
/// supervisor can tell: it is killed, restarted, and — when the wedge
/// is systematic — failed with a typed heartbeat message once the
/// restart budget runs out. The server itself stays healthy.
#[test]
fn systematically_wedged_heartbeat_exhausts_the_budget_with_a_typed_failure() {
    let _g = serial();
    // Armed via the environment so the re-execed child inherits it;
    // the parent's own registry never evaluates this point.
    std::env::set_var(
        ahs_safety::inject::ENV_VAR,
        "serve::worker::heartbeat=return(other)",
    );
    let (server, dir) = start_process_server("chaos-heartbeat", |c| {
        c.restart_budget = 1;
        if let Isolation::Process(isolation) = &mut c.isolation {
            isolation.heartbeat_interval = Duration::from_millis(50);
            isolation.heartbeat_stale_after = Duration::from_millis(500);
        }
    });
    let addr = server.local_addr();

    // Big enough that no attempt can finish before going stale.
    let name = submit(addr, &job_body(63, 2_000_000, 1));
    let doc = wait_for_state(addr, &name, "failed", Duration::from_secs(120));
    std::env::remove_var(ahs_safety::inject::ENV_VAR);

    let error = doc
        .get("error")
        .and_then(Json::as_str)
        .unwrap_or_default()
        .to_owned();
    assert!(
        error.contains("heartbeat") && error.contains("restart budget"),
        "failure must name the stale heartbeat and the budget: {error}"
    );
    assert_eq!(
        doc.get("restarts").and_then(Json::as_u64),
        Some(1),
        "{doc:?}"
    );
    let health = get_json(addr, "/v1/healthz");
    assert_eq!(health.get("status").and_then(Json::as_str), Some("ok"));

    drain(server, &dir);
}

/// The sweep above must cover every registered failpoint of the
/// `ahs-serve-worker` layer — new points fail this test until they get
/// a scenario.
#[test]
fn sweep_covers_the_whole_worker_layer() {
    let swept = [
        "serve::worker::exec",
        "serve::worker::reap",
        "serve::worker::heartbeat",
    ];
    for desc in ahs_safety::inject::catalog() {
        if desc.layer == "ahs-serve-worker" {
            assert!(
                swept.contains(&desc.name),
                "failpoint {} has no chaos scenario",
                desc.name
            );
        }
    }
    assert_eq!(
        ahs_safety::inject::catalog()
            .iter()
            .filter(|d| d.layer == "ahs-serve-worker")
            .count(),
        swept.len(),
        "catalog and sweep drifted apart"
    );
}
